package server

import (
	"strconv"
	"sync/atomic"
	"time"

	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/query"
)

// Metrics aggregates server-wide counters: request and query volumes,
// error counts, query latency, per-source fetch metrics, and (via the
// caches' own stats) plan and result cache hit rates. All methods are
// safe for concurrent use; the query hot path records without locks.
type Metrics struct {
	start time.Time

	requestsTotal atomic.Uint64
	queriesTotal  atomic.Uint64
	queryErrors   atomic.Uint64
	queryTimeouts atomic.Uint64
	iterations    atomic.Uint64 // integration steps served (federate/intersect/refine)

	snapshots       atomic.Uint64 // session snapshots written (autosave + explicit)
	snapshotErrors  atomic.Uint64 // failed snapshot writes
	sessionRestores atomic.Uint64 // sessions restored from the store

	queueAdmitted      atomic.Uint64 // requests admitted (immediately or after queuing)
	queueRejected      atomic.Uint64 // 429s: queue full at the admission limit
	queueDrainRejected atomic.Uint64 // 503s: rejected because the server is draining

	panics          atomic.Uint64 // handler panics recovered by the middleware
	degradedQueries atomic.Uint64 // answers evaluated over stale fallback extents

	lat       *obs.Histogram
	queueWait *obs.Histogram // time spent parked in the admission queue
	sources   *obs.Sources
}

// latencyBoundsMs are the upper bounds (milliseconds) of the query
// latency histogram: sub-millisecond buckets for cache-hit answers out
// to ten seconds for slow federated queries; observations beyond the
// last bound land in an overflow bucket.
var latencyBoundsMs = []float64{0.1, 0.5, 1, 5, 25, 100, 500, 2500, 10000}

// NewMetrics returns zeroed metrics anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		lat:       obs.NewHistogram(latencyBoundsMs),
		queueWait: obs.NewHistogram(latencyBoundsMs),
		sources:   obs.NewSources(),
	}
}

// Sources exposes the per-source fetch-metrics registry; the request
// middleware attaches it to query contexts so wrapper fetches record
// into it.
func (m *Metrics) Sources() *obs.Sources { return m.sources }

// Request counts one HTTP request.
func (m *Metrics) Request() { m.requestsTotal.Add(1) }

// Iteration counts one served integration step.
func (m *Metrics) Iteration() { m.iterations.Add(1) }

// SnapshotWritten counts one session snapshot written to the store.
func (m *Metrics) SnapshotWritten() { m.snapshots.Add(1) }

// SnapshotError counts one failed snapshot write.
func (m *Metrics) SnapshotError() { m.snapshotErrors.Add(1) }

// SessionRestore counts one session restored from the store.
func (m *Metrics) SessionRestore() { m.sessionRestores.Add(1) }

// QueueAdmitted counts one request through admission control; waited
// is its time in the fair queue (zero when admitted immediately).
func (m *Metrics) QueueAdmitted(waited time.Duration) {
	m.queueAdmitted.Add(1)
	if waited > 0 {
		m.queueWait.Observe(waited)
	}
}

// QueueRejected counts one 429 at the admission limit.
func (m *Metrics) QueueRejected() { m.queueRejected.Add(1) }

// QueueDrainRejected counts one request rejected during drain.
func (m *Metrics) QueueDrainRejected() { m.queueDrainRejected.Add(1) }

// Panic counts one handler panic recovered by the middleware.
func (m *Metrics) Panic() { m.panics.Add(1) }

// DegradedQuery counts one answer served over stale fallback extents.
func (m *Metrics) DegradedQuery() { m.degradedQueries.Add(1) }

// Query records one query's outcome and latency.
func (m *Metrics) Query(d time.Duration, err error, timedOut bool) {
	m.queriesTotal.Add(1)
	if err != nil {
		m.queryErrors.Add(1)
		if timedOut {
			m.queryTimeouts.Add(1)
		}
	}
	m.lat.Observe(d)
}

// LatencySnapshot summarises an observed latency distribution. P50/95/99
// are estimated from the histogram by linear interpolation within the
// bucket holding the target rank (the histogram_quantile estimate).
type LatencySnapshot struct {
	Count   uint64            `json:"count"`
	MeanMs  float64           `json:"mean_ms"`
	MaxMs   float64           `json:"max_ms"`
	P50Ms   float64           `json:"p50_ms"`
	P95Ms   float64           `json:"p95_ms"`
	P99Ms   float64           `json:"p99_ms"`
	Buckets map[string]uint64 `json:"buckets"`
}

func latencySnapshot(h obs.HistSnapshot) LatencySnapshot {
	lat := LatencySnapshot{
		Count:   h.Count,
		MeanMs:  h.MeanMs(),
		MaxMs:   h.MaxMs(),
		P50Ms:   h.Quantile(0.50),
		P95Ms:   h.Quantile(0.95),
		P99Ms:   h.Quantile(0.99),
		Buckets: make(map[string]uint64, len(h.Counts)),
	}
	for i, c := range h.Counts {
		lat.Buckets[bucketLabel(h.BoundsMs, i)] = c
	}
	return lat
}

// SourceMetrics is the JSON shape of one data source's fetch metrics.
type SourceMetrics struct {
	Source  string          `json:"source"`
	Kind    string          `json:"kind"`
	Fetches uint64          `json:"fetches"`
	Errors  uint64          `json:"errors"`
	Retries uint64          `json:"retries"`
	Rows    int64           `json:"rows"`
	Bytes   int64           `json:"bytes"`
	Latency LatencySnapshot `json:"fetch_latency"`
}

// MetricsSnapshot is the JSON shape served by GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	RequestsTotal uint64          `json:"requests_total"`
	QueriesTotal  uint64          `json:"queries_total"`
	QueryErrors   uint64          `json:"query_errors"`
	QueryTimeouts uint64          `json:"query_timeouts"`
	Iterations    uint64          `json:"integration_iterations"`
	Snapshots     uint64          `json:"snapshots_total"`
	SnapshotErrs  uint64          `json:"snapshot_errors"`
	Restores      uint64          `json:"sessions_restored"`
	Latency       LatencySnapshot `json:"query_latency"`
	PlanCache     CacheSnapshot   `json:"plan_cache"`
	ResultCache   CacheSnapshot   `json:"result_cache"`
	ExtentCache   CacheSnapshot   `json:"extent_cache"`
	SourceCache   CacheSnapshot   `json:"source_extent_cache"`
	// CacheBytes / CacheEvictions / CacheInvalidations aggregate the
	// four cache layers above.
	CacheBytes         int64           `json:"cache_bytes_total"`
	CacheEvictions     uint64          `json:"cache_evictions_total"`
	CacheInvalidations uint64          `json:"cache_invalidations_total"`
	Sessions           int             `json:"sessions"`
	Panics             uint64          `json:"panics_total"`
	DegradedQueries    uint64          `json:"degraded_queries_total"`
	Queue              QueueSnapshot   `json:"queue"`
	Eval               EvalSnapshot    `json:"eval"`
	Sources            []SourceMetrics `json:"sources"`
	// SourceHealth is every session's per-source breaker state; empty
	// when the fault-tolerance layer is disabled.
	SourceHealth []SessionSourceHealth `json:"source_health,omitempty"`
}

// SessionSourceHealth is one source's breaker state qualified by its
// session, the metrics-endpoint shape of query.SourceHealth.
type SessionSourceHealth struct {
	Session string `json:"session"`
	query.SourceHealth
}

// EvalSnapshot is the JSON shape of data-parallel evaluation activity
// (summed across sessions) plus the effective pool settings.
type EvalSnapshot struct {
	// ParallelEvals and SerialEvals split completed evaluations by
	// whether any generator scan ran sharded.
	ParallelEvals uint64 `json:"parallel_evals_total"`
	SerialEvals   uint64 `json:"serial_evals_total"`
	// Shards counts shards executed across all sharded scans.
	Shards uint64 `json:"shards_total"`
	// Parallelism is the effective sharded-evaluation pool width.
	Parallelism int `json:"parallelism"`
	// PrefetchWorkers / PrefetchMaxTasks are the effective prefetch
	// pool settings.
	PrefetchWorkers  int `json:"prefetch_workers"`
	PrefetchMaxTasks int `json:"prefetch_max_tasks"`
}

// QueueSnapshot is the JSON shape of the admission controller's state
// and counters.
type QueueSnapshot struct {
	QueueStats
	Admitted      uint64          `json:"admitted_total"`
	Rejected      uint64          `json:"rejected_total"`
	DrainRejected uint64          `json:"drain_rejected_total"`
	Wait          LatencySnapshot `json:"wait"`
}

// CacheSnapshot extends CacheStats with the derived hit rate.
type CacheSnapshot struct {
	CacheStats
	HitRate float64 `json:"hit_rate"`
}

func snapshotCache(s CacheStats) CacheSnapshot {
	return CacheSnapshot{CacheStats: s, HitRate: s.HitRate()}
}

// Snapshot gathers the current counter values; cache stats are summed
// across the given per-session caches (plan = shared parsed plans,
// result = per-session answers, extent = virtual-extent memos, src =
// source extents); queue is the admission controller's current state.
func (m *Metrics) Snapshot(plan, result, extent, src CacheStats, queue QueueStats, sessions int, eval EvalSnapshot, health []SessionSourceHealth) MetricsSnapshot {
	srcSnaps := m.sources.Snapshot()
	sources := make([]SourceMetrics, 0, len(srcSnaps))
	for _, s := range srcSnaps {
		sources = append(sources, SourceMetrics{
			Source:  s.Source,
			Kind:    s.Kind,
			Fetches: s.Fetches,
			Errors:  s.Errors,
			Retries: s.Retries,
			Rows:    s.Rows,
			Bytes:   s.Bytes,
			Latency: latencySnapshot(s.Latency),
		})
	}

	return MetricsSnapshot{
		UptimeSeconds:      time.Since(m.start).Seconds(),
		RequestsTotal:      m.requestsTotal.Load(),
		QueriesTotal:       m.queriesTotal.Load(),
		QueryErrors:        m.queryErrors.Load(),
		QueryTimeouts:      m.queryTimeouts.Load(),
		Iterations:         m.iterations.Load(),
		Snapshots:          m.snapshots.Load(),
		SnapshotErrs:       m.snapshotErrors.Load(),
		Restores:           m.sessionRestores.Load(),
		Latency:            latencySnapshot(m.lat.Snapshot()),
		PlanCache:          snapshotCache(plan),
		ResultCache:        snapshotCache(result),
		ExtentCache:        snapshotCache(extent),
		SourceCache:        snapshotCache(src),
		CacheBytes:         plan.Bytes + result.Bytes + extent.Bytes + src.Bytes,
		CacheEvictions:     plan.Evictions + result.Evictions + extent.Evictions + src.Evictions,
		CacheInvalidations: plan.Invalidations + result.Invalidations + extent.Invalidations + src.Invalidations,
		Sessions:           sessions,
		Panics:             m.panics.Load(),
		DegradedQueries:    m.degradedQueries.Load(),
		Eval:               eval,
		SourceHealth:       health,
		Queue: QueueSnapshot{
			QueueStats:    queue,
			Admitted:      m.queueAdmitted.Load(),
			Rejected:      m.queueRejected.Load(),
			DrainRejected: m.queueDrainRejected.Load(),
			Wait:          latencySnapshot(m.queueWait.Snapshot()),
		},
		Sources: sources,
	}
}

// bucketLabel renders the i-th bucket's JSON key. Bounds format
// losslessly ("le_0.1ms", "le_2500ms"); the overflow bucket past the
// last bound is "le_inf".
func bucketLabel(bounds []float64, i int) string {
	if i >= len(bounds) {
		return "le_inf"
	}
	return "le_" + strconv.FormatFloat(bounds[i], 'g', -1, 64) + "ms"
}
