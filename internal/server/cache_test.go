package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch "a" so "b" becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %q missing after eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, len 3", st)
	}
}

func TestLRUUpdateRefreshes(t *testing.T) {
	c := NewLRU[string](2)
	c.Put("a", "1")
	c.Put("b", "2")
	c.Put("a", "1'") // refresh, not insert
	c.Put("c", "3")  // evicts b
	if v, ok := c.Get("a"); !ok || v != "1'" {
		t.Fatalf("Get(a) = %q, %v; want refreshed value", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction after a was refreshed")
	}
}

func TestLRUPurgeAndStats(t *testing.T) {
	c := NewLRU[int](8)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("3"); ok {
		t.Fatal("entry survived purge")
	}
	st := c.Stats()
	if st.Purges != 1 {
		t.Fatalf("purges = %d, want 1", st.Purges)
	}
	if st.HitRate() != 0 {
		t.Fatalf("hit rate = %v, want 0", st.HitRate())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprint(i % 100)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
				if i%97 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed: len %d", c.Len())
	}
}
