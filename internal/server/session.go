// Package server exposes the pay-as-you-go intersection-schema
// workflow as a long-running dataspace service: data sources are
// registered over HTTP, federated for immediate querying, and
// incrementally integrated while concurrent clients keep querying any
// published global schema version.
//
// The serving layer adds what a library cannot: a session registry of
// live integrations, a bounded cache of parsed IQL plans, a per-session
// result cache keyed by (schema version, normalised query) whose
// entries are tagged with the dependency closure of their evaluation —
// an integration iteration evicts only the answers whose schemes it
// touched, keeping warm answers for untouched schemes live across
// schema versions — per-request timeouts via context cancellation, and
// metrics (query counts, latencies, per-cache-layer hit rates, bytes
// and evictions).
package server

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/dataspace/automed/internal/cache"
	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/wrapper"
)

// plan is a parsed, normalised IQL query; sharing one across
// evaluations is safe because evaluation never mutates the AST.
type plan struct {
	expr iql.Expr
	norm string // canonical rendering, the result-cache key component
}

// Session is one live integration: registered sources, then — once
// federated — an Integrator plus a result cache over its published
// schema versions. A session's mutating workflow steps serialise with
// its queries via mu; queries additionally hold the integrator's read
// lock for their whole evaluation.
type Session struct {
	name     string
	settings SessionSettings

	mu       sync.RWMutex
	wrappers []wrapper.Wrapper
	ig       *core.Integrator

	// results caches query answers keyed by (version, normalised
	// query); every entry is tagged with the dependency closure of its
	// evaluation (core.Result.Deps), so integration iterations evict
	// only the entries whose schemes they touched. Entries carry their
	// response renderings, so a hit skips re-rendering too.
	results *cache.Store[Answer]
}

// SessionSettings carries the per-session tuning knobs every new (or
// restored) session's query processor is configured with.
type SessionSettings struct {
	// ResultCapacity bounds the result cache's entry count (<= 0
	// disables the cache).
	ResultCapacity int
	// CacheBytes is the byte budget per cache layer (0 = unbounded).
	CacheBytes int64
	// MaxSteps bounds IQL evaluation steps per query (0 = unlimited).
	MaxSteps int
	// EvalParallelism is the sharded-evaluation worker count: 0 picks
	// GOMAXPROCS, 1 forces serial evaluation.
	EvalParallelism int
	// PrefetchWorkers and PrefetchMaxTasks tune the concurrent extent
	// prefetcher (0 = package defaults).
	PrefetchWorkers  int
	PrefetchMaxTasks int
	// ScanBuffer is the streaming extent pipeline's row window (0 =
	// package default, negative disables streaming).
	ScanBuffer int
	// Breaker configures the per-source circuit breakers and stale
	// fallback; the zero value disables the layer.
	Breaker query.BreakerConfig
	// MinFederatedSources, when > 0, makes Federate probe each source
	// and proceed with the reachable subset as long as at least this
	// many answer; skipped sources backfill later via Probe. 0 keeps
	// the strict all-sources federation.
	MinFederatedSources int
}

// applyTo configures a session's query processor from the settings.
func (cfg SessionSettings) applyTo(p *query.Processor) {
	p.MaxSteps = cfg.MaxSteps
	p.SetCacheBytes(cfg.CacheBytes)
	p.Parallel = cfg.EvalParallelism
	p.PrefetchWorkers = cfg.PrefetchWorkers
	p.PrefetchMaxTasks = cfg.PrefetchMaxTasks
	p.ScanBuffer = cfg.ScanBuffer
	p.SetBreaker(cfg.Breaker)
}

func newSession(name string, cfg SessionSettings) *Session {
	return &Session{
		name:     name,
		settings: cfg,
		results: cache.New[Answer](cache.Options{
			MaxEntries: cfg.ResultCapacity,
			MaxBytes:   cfg.CacheBytes,
			Disabled:   cfg.ResultCapacity <= 0,
		}),
	}
}

// Name returns the session name.
func (s *Session) Name() string { return s.name }

// Federated reports whether the session has built its federated schema
// (and is therefore queryable).
func (s *Session) Federated() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ig != nil
}

// Wrapper returns the registered source with the given schema name.
func (s *Session) Wrapper(name string) (wrapper.Wrapper, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.wrappers {
		if w.SchemaName() == name {
			return w, true
		}
	}
	return nil, false
}

// SourceNames lists the registered sources in registration order.
func (s *Session) SourceNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.wrappers))
	for i, w := range s.wrappers {
		out[i] = w.SchemaName()
	}
	return out
}

// AddSource registers a wrapped data source. Sources must be registered
// before Federate.
func (s *Session) AddSource(w wrapper.Wrapper) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ig != nil {
		return fmt.Errorf("server: session %q is already federated; sources must be registered first", s.name)
	}
	for _, have := range s.wrappers {
		if have.SchemaName() == w.SchemaName() {
			return fmt.Errorf("server: session %q already has a source named %q", s.name, w.SchemaName())
		}
	}
	s.wrappers = append(s.wrappers, w)
	return nil
}

// Federate builds the integrator over the registered sources and
// publishes the federated schema (version 0). autoDrop elects
// redundant-object dropping for the global schemas rebuilt after each
// subsequent iteration. When the session's MinFederatedSources setting
// is > 0, sources are probed first and federation proceeds over the
// reachable subset (at least that many), recording the skipped sources
// for probe-driven backfill. The session is mutated only if federation
// succeeds.
func (s *Session) Federate(ctx context.Context, name string, autoDrop bool) (*core.Integrator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ig != nil {
		return nil, fmt.Errorf("server: session %q is already federated", s.name)
	}
	if len(s.wrappers) == 0 {
		return nil, fmt.Errorf("server: session %q has no registered sources", s.name)
	}
	ig, err := core.New(s.wrappers...)
	if err != nil {
		return nil, err
	}
	ig.SetAutoDrop(autoDrop)
	s.settings.applyTo(ig.Processor())
	if min := s.settings.MinFederatedSources; min > 0 {
		if _, _, err := ig.FederateReachable(ctx, name, min); err != nil {
			return nil, err
		}
	} else if _, err := ig.Federate(name); err != nil {
		return nil, err
	}
	// No result-cache purge: queries need a federated integrator, so
	// the cache is necessarily empty here.
	s.ig = ig
	return ig, nil
}

// Skipped lists the sources federation skipped as unreachable and has
// not yet backfilled.
func (s *Session) Skipped() []string {
	ig, err := s.integrator()
	if err != nil {
		return nil
	}
	return ig.Skipped()
}

// SourceHealth reports the per-source breaker states of the session's
// query processor; nil before federation or with breakers disabled.
func (s *Session) SourceHealth() []query.SourceHealth {
	ig, err := s.integrator()
	if err != nil {
		return nil
	}
	return ig.Processor().SourceHealth()
}

// Probe drives the session's recovery paths once: open breakers get a
// probe fetch (closing on success), and federation-skipped sources are
// re-probed and backfilled into the federated schema. It returns the
// number of sources that recovered. Safe to call concurrently with
// queries; a no-op before federation.
func (s *Session) Probe(ctx context.Context) int {
	ig, err := s.integrator()
	if err != nil {
		return 0
	}
	n := ig.Processor().ProbeOpen(ctx)
	if len(ig.Skipped()) > 0 {
		recovered, err := ig.Backfill(ctx)
		n += len(recovered)
		if err == nil && len(recovered) > 0 {
			// Backfilled sources extend the federated schema; cached
			// answers were computed without them.
			s.results.Purge()
		}
	}
	return n
}

// InvalidateExtents drops every cached extent and answer, forcing the
// next queries to re-fetch from the sources. This is the ops lever for
// fault drills: cached extents otherwise shield a downed source from
// queries indefinitely.
func (s *Session) InvalidateExtents() {
	if ig, err := s.integrator(); err == nil {
		ig.Processor().InvalidateCache()
	}
	s.results.Purge()
}

// integrator returns the session's integrator, or an error before
// Federate.
func (s *Session) integrator() (*core.Integrator, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ig == nil {
		return nil, fmt.Errorf("server: session %q is not federated yet", s.name)
	}
	return s.ig, nil
}

// Intersect runs one integration iteration and selectively invalidates
// the result cache: only cached answers whose dependency closure
// intersects the iteration's touch-set are evicted; warm answers for
// untouched schemes stay live across the new schema version.
func (s *Session) Intersect(name string, mappings []core.Mapping, enables ...string) (*core.Intersection, error) {
	ig, err := s.integrator()
	if err != nil {
		return nil, err
	}
	in, err := ig.Intersect(name, mappings, enables...)
	if err != nil {
		return nil, err
	}
	s.results.InvalidateDeps(in.Touched...)
	return in, nil
}

// Refine applies an ad-hoc single-schema transformation and evicts the
// cached answers that depend on its target.
func (s *Session) Refine(name string, m core.Mapping, enables ...string) error {
	ig, err := s.integrator()
	if err != nil {
		return err
	}
	if err := ig.Refine(name, m, enables...); err != nil {
		return err
	}
	if tsc, err := m.TargetScheme(); err == nil {
		s.results.InvalidateDeps(tsc.Key())
	} else {
		// Unreachable after a successful Refine; purge defensively so
		// an unparseable target can never leave stale answers live.
		s.results.Purge()
	}
	return nil
}

// QueryOutcome reports how a query was answered, for response metadata
// and cache-behaviour tests.
type QueryOutcome struct {
	PlanCached   bool
	ResultCached bool
}

// Answer pairs a query result with its response renderings. Both are
// computed once, when the answer is first evaluated, and cached with
// it, so a result-cache hit skips the canonical re-rendering (bag
// sorting included) as well as the re-evaluation.
type Answer struct {
	core.Result
	// JSONValue is the JSON-encodable shape of Result.Value.
	JSONValue any
	// Rendered is Result.Value in IQL source syntax.
	Rendered string
}

// render fills the answer's response renderings from its result.
func (a *Answer) render() {
	a.JSONValue = valueJSON(a.Value)
	a.Rendered = a.Value.String()
}

// Query answers an IQL query against the requested schema version
// (core.CurrentVersion for the latest), consulting the plan cache and
// — unless noCache — the result cache.
func (s *Session) Query(ctx context.Context, plans *cache.Store[plan], src string, version int, noCache bool) (Answer, QueryOutcome, error) {
	ig, err := s.integrator()
	if err != nil {
		return Answer{}, QueryOutcome{}, err
	}

	var out QueryOutcome
	psp, _ := obs.StartSpan(ctx, obs.StageParse, "")
	pl, ok := plans.Get(src)
	if ok {
		out.PlanCached = true
		psp.SetCache(obs.CacheHit)
		psp.End(nil)
	} else {
		e, err := iql.Parse(src)
		psp.SetCache(obs.CacheMiss)
		psp.End(err)
		if err != nil {
			return Answer{}, out, err
		}
		pl = plan{expr: e, norm: e.String()}
		plans.Put(src, pl, planCost(src, pl), nil)
	}

	ver := version
	if ver == core.CurrentVersion {
		ver = ig.GlobalVersion()
	}
	key := fmt.Sprintf("%d\x00%s", ver, pl.norm)
	if !noCache {
		if ans, ok := s.results.Get(key); ok {
			out.ResultCached = true
			if sp, _ := obs.StartSpan(ctx, obs.StageResultCache, ""); sp != nil {
				sp.SetCache(obs.CacheHit)
				sp.End(nil)
			}
			return ans, out, nil
		}
		if sp, _ := obs.StartSpan(ctx, obs.StageResultCache, ""); sp != nil {
			sp.SetCache(obs.CacheMiss)
			sp.End(nil)
		}
	}

	// Snapshot the invalidation generation before evaluating: if an
	// iteration's InvalidateDeps lands between our evaluation (under
	// the integrator's read lock) and the insert below, PutAt discards
	// the result — it was computed from pre-iteration derivations and
	// caching it would dodge the invalidation that covered it.
	gen := s.results.Generation()
	res, err := ig.QueryExprAt(ctx, version, pl.expr)
	if err != nil {
		return Answer{}, out, err
	}
	ans := Answer{Result: res}
	rsp, _ := obs.StartSpan(ctx, obs.StageRender, "")
	ans.render()
	rsp.End(nil)
	if !noCache && res.Version == ver {
		// res.Version can differ from ver only if an iteration raced
		// between GlobalVersion and evaluation; skip caching then
		// rather than file the result under the wrong version.
		s.results.PutAt(gen, key, ans, resultCost(ans), res.Deps)
	}
	return ans, out, nil
}

// resultCost estimates a cached answer's in-memory size for the result
// cache's byte budget (the JSON shape is of the same order as the
// rendering, counted twice to stay conservative).
func resultCost(a Answer) int64 {
	n := a.Value.Footprint() + int64(len(a.Schema)) + 64
	n += 2 * int64(len(a.Rendered))
	for _, w := range a.Warnings {
		n += int64(len(w)) + 16
	}
	for _, d := range a.Deps {
		n += int64(len(d)) + 16
	}
	return n
}

// planCost estimates a cached plan's size: the source text it is keyed
// by plus its normalised rendering (the AST is of the same order).
func planCost(src string, pl plan) int64 {
	return int64(len(src) + 2*len(pl.norm) + 64)
}

// Export captures the session's durable state: the integrator snapshot
// once federated, otherwise the registered sources. Non-serialisable
// sources (wrappers without a Snapshot hook) make the session
// non-exportable and are reported by name.
func (s *Session) Export() (*sessionState, error) {
	s.mu.RLock()
	ig := s.ig
	ws := append([]wrapper.Wrapper(nil), s.wrappers...)
	s.mu.RUnlock()

	state := &sessionState{Format: storeFormat, Name: s.name}
	if ig != nil {
		snap, err := ig.Export()
		if err != nil {
			return nil, fmt.Errorf("server: exporting session %q: %w", s.name, err)
		}
		state.Integrator = snap
		return state, nil
	}
	snaps, err := wrapper.SnapshotAll(ws)
	if err != nil {
		return nil, fmt.Errorf("server: exporting session %q: %w", s.name, err)
	}
	state.Sources = snaps
	return state, nil
}

// sessionFromState rebuilds a session from its durable state. The
// restored session starts cold: every cache layer (results, extent
// memo, source extents) is empty and warms on demand, so restore never
// replays stale derived state — the snapshot holds definitions, not
// materialisations.
func sessionFromState(state *sessionState, cfg SessionSettings) (*Session, error) {
	sess := newSession(state.Name, cfg)
	if state.Integrator != nil {
		ig, err := core.Import(state.Integrator)
		if err != nil {
			return nil, fmt.Errorf("server: restoring session %q: %w", state.Name, err)
		}
		cfg.applyTo(ig.Processor())
		sess.ig = ig
		sess.wrappers = ig.Sources()
		return sess, nil
	}
	for _, ws := range state.Sources {
		w, err := wrapper.Restore(ws)
		if err != nil {
			return nil, fmt.Errorf("server: restoring session %q: %w", state.Name, err)
		}
		sess.wrappers = append(sess.wrappers, w)
	}
	return sess, nil
}

// ResultCacheStats snapshots the session's result cache.
func (s *Session) ResultCacheStats() CacheStats { return s.results.Stats() }

// ExtentCacheStats snapshots the session's query-processor cache
// layers: the virtual-extent memo and the source-extent cache. Both are
// zero before federation.
func (s *Session) ExtentCacheStats() (memo, src CacheStats) {
	ig, err := s.integrator()
	if err != nil {
		return CacheStats{}, CacheStats{}
	}
	return ig.Processor().CacheStats()
}

// ParallelStats snapshots the session processor's sharded-evaluation
// counters; zero before federation.
func (s *Session) ParallelStats() query.ParallelStats {
	ig, err := s.integrator()
	if err != nil {
		return query.ParallelStats{}
	}
	return ig.Processor().ParallelStats()
}

// PurgeResults empties the session's result cache.
func (s *Session) PurgeResults() { s.results.Purge() }

// Registry is the named-session table.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	settings SessionSettings
}

// NewRegistry returns an empty registry; every session it creates is
// configured from the given settings.
func NewRegistry(cfg SessionSettings) *Registry {
	return &Registry{
		sessions: make(map[string]*Session),
		settings: cfg,
	}
}

// Get returns the named session, creating it when create is set.
func (r *Registry) Get(name string, create bool) (*Session, error) {
	if name == "" {
		name = "default"
	}
	r.mu.RLock()
	s, ok := r.sessions[name]
	r.mu.RUnlock()
	if ok {
		return s, nil
	}
	if !create {
		return nil, fmt.Errorf("server: no session %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[name]; ok {
		return s, nil
	}
	s = newSession(name, r.settings)
	r.sessions[name] = s
	return s, nil
}

// Put installs (or replaces) a session under its name; used when
// restoring sessions from the store.
func (r *Registry) Put(sess *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions[sess.name] = sess
}

// Names lists the registered session names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered session.
func (r *Registry) All() []*Session {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	return out
}

// Len returns the number of sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}
