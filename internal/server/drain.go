package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// BeginDrain flips the server into draining mode: /healthz turns
// unready (load balancers stop routing here), every queued request is
// woken with a 503 + Retry-After, and all new work is rejected the same
// way. Requests already admitted keep running. Idempotent.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.adm.isDraining() }

// Drain performs the server side of a graceful shutdown: BeginDrain,
// wait for every admitted request to finish (bounded by ctx), then
// flush a final snapshot of every session to the store. A drain that
// times out still flushes — the snapshots capture whatever state the
// sessions reached — but reports the deadline error.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	idleErr := s.adm.waitIdle(ctx)
	// Background recovery probes hold live wrapper connections; wait for
	// them too before flushing, so snapshots see quiesced sessions. The
	// probes run under a bounded context of their own, so this wait
	// cannot outlive ProbeInterval by much.
	s.probeWG.Wait()
	if err := s.FlushSnapshots(); err != nil {
		s.log.Error("drain: snapshot flush failed", "error", err)
		if idleErr == nil {
			idleErr = err
		}
	}
	return idleErr
}

// FlushSnapshots persists every live session to the store; a no-op when
// persistence is disabled. The first failure is returned but does not
// stop the remaining sessions from being flushed.
func (s *Server) FlushSnapshots() error {
	if s.Store() == nil {
		return nil
	}
	var firstErr error
	for _, name := range s.reg.Names() {
		if _, err := s.SnapshotSession(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// QueueStats exposes the admission controller's current state (for
// /metrics and tests).
func (s *Server) QueueStats() QueueStats { return s.adm.stats() }

// retryAfterSeconds estimates how long a rejected client should wait
// before retrying: the backlog ahead of it (queue depth plus the
// in-flight requests) divided by the service capacity, priced at the
// median query latency, clamped to [1s, 30s]. With no latency data yet
// the floor applies.
func (s *Server) retryAfterSeconds() int {
	st := s.adm.stats()
	capacity := st.MaxInflight
	if capacity <= 0 {
		capacity = 1
	}
	p50 := s.metrics.lat.Snapshot().Quantile(0.50) // milliseconds
	est := p50 * float64(st.Depth+st.Inflight) / float64(capacity) / 1000
	secs := int(est + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// ServeGraceful serves the handler on ln until ctx is cancelled
// (typically by SIGTERM through signal.NotifyContext), then drains:
// the admission queue empties with 503s, /healthz goes unready,
// in-flight requests get up to drainTimeout to finish, and every
// session is flushed to the store before returning. A nil return means
// the drain completed cleanly with no request dropped.
func (s *Server) ServeGraceful(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}

	s.log.Info("draining", "timeout", drainTimeout, "queue", s.adm.stats().Depth)
	s.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Shutdown stops the listener and waits for in-flight HTTP
	// handlers; Drain additionally waits for admitted work (a superset
	// under normal operation, the belt to Shutdown's braces) and
	// flushes session snapshots.
	shutdownErr := httpSrv.Shutdown(dctx)
	drainErr := s.Drain(dctx)
	if shutdownErr != nil {
		s.log.Error("drain: http shutdown incomplete", "error", shutdownErr)
		if drainErr == nil {
			drainErr = shutdownErr
		}
	}
	if drainErr == nil {
		s.log.Info("drained")
	}
	return drainErr
}
