package server

import "github.com/dataspace/automed/internal/cache"

// CacheStats is the server-facing name for the unified cache
// subsystem's stats snapshot; all server cache layers (parsed plans,
// per-session results, and — through the query processor — extent
// memos and source extents) are backed by cache.Store.
type CacheStats = cache.Stats
