package server

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of one cache's counters.
type CacheStats struct {
	Len       int    `json:"len"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Purges    uint64 `json:"purges"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// lruEntry is one cache slot.
type lruEntry[V any] struct {
	key string
	val V
}

// LRU is a bounded, mutex-guarded least-recently-used cache. It backs
// both the parsed-plan cache and the query-result cache.
type LRU[V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	purges    uint64
}

// NewLRU returns a cache holding at most capacity entries; capacity
// <= 0 disables the cache (every Get misses, Put is a no-op).
func NewLRU[V any](capacity int) *LRU[V] {
	return &LRU[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when the cache is full.
func (c *LRU[V]) Put(key string, val V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// Purge discards every entry (counters are kept).
func (c *LRU[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.purges++
}

// Len returns the number of cached entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *LRU[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Len:       c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Purges:    c.purges,
	}
}
