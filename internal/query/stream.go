package query

import (
	"context"
	"strings"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/wrapper"
)

// This file is the query-layer half of the streaming extent pipeline:
// when the evaluator asks for a generator source that resolves to a
// single streaming-capable wrapper, the processor serves it as a
// pull-based iql.RowStream backed by the wrapper's paged Scanner
// instead of materialising the whole extent. Peak memory for a scan
// over an N-row source extent is then bounded by the scan buffer, not
// by N.
//
// Everything that relies on whole-extent values keeps its existing
// semantics byte-identically by falling back to the materialised path
// (ExtentStream returns ok=false): cached extents, open breakers,
// computed virtual objects (bare renames — federation's include and
// rename transforms — chase through to their source), ambiguous
// references, non-streaming wrappers, snapshots (which go through
// Processor.Extent), and extents at or below the spill threshold — those are read through the scanner once,
// materialised, and cached exactly as a wrapper fetch would have been.

// ScanSourcer is the pull-based scan extension an extent provider may
// implement; it is wrapper.ScanSourcer re-exported so registering code
// can name it without importing the wrapper package.
type ScanSourcer = wrapper.ScanSourcer

// DefaultScanBufferRows is the streaming pipeline's row window when
// Processor.ScanBuffer is unset: both the spill threshold below which
// extents are materialised and cached as before, and the capacity of
// the prefetching buffer between the scanner and the evaluator.
const DefaultScanBufferRows = 4096

// effectiveScanBuffer resolves the configured scan buffer: 0 means
// DefaultScanBufferRows, negative disables streaming entirely.
func (p *Processor) effectiveScanBuffer() int {
	switch {
	case p.ScanBuffer > 0:
		return p.ScanBuffer
	case p.ScanBuffer < 0:
		return 0
	}
	return DefaultScanBufferRows
}

// ExtentStream implements iql.StreamExtents for evaluation sessions.
// ok=false (with nil error) tells the evaluator to materialise through
// Extent instead, which owns error reporting for unknown and ambiguous
// references.
func (s *session) ExtentStream(parts []string) (iql.RowStream, bool, error) {
	return s.p.extentStream(s, parts)
}

func (p *Processor) extentStream(s *session, parts []string) (iql.RowStream, bool, error) {
	buf := p.effectiveScanBuffer()
	if buf <= 0 {
		return nil, false, nil
	}
	src, sc, deps, ok := p.resolveStreamable(s.scope(), parts)
	if !ok {
		return nil, false, nil
	}
	rs, ok := p.sourceStream(s, src, sc, buf)
	if !ok {
		return nil, false, nil
	}
	// Committed to streaming: record the same dependency keys the
	// materialised resolution would have.
	for _, d := range deps {
		s.dep(d)
	}
	return rs, true, nil
}

// maxRenameHops bounds the rename chase in resolveStreamable; chains
// longer than this (or cyclic ones) take the materialised path, whose
// recursion cut owns cycle handling.
const maxRenameHops = 8

// resolveStreamable resolves parts to a single streaming-capable
// source in exactly the order extentIn does (scope, virtual, global),
// additionally chasing virtual objects whose sole derivation is a bare
// scheme reference — the shape federation's include and rename
// transforms produce — so federated object names stream just like the
// source objects they alias. Everything else reports ok=false and
// takes the materialised path, which owns derivation unfolding, memo
// replay, and error reporting for unknown and ambiguous references.
// deps are the dependency keys the materialised resolution of the same
// chain would record (minus the ones sourceExtent adds itself, which
// sourceStream's caller mirrors).
func (p *Processor) resolveStreamable(scope string, parts []string) (source, hdm.Scheme, []string, bool) {
	var deps []string
	for hop := 0; hop <= maxRenameHops; hop++ {
		// 1. The current scope's source schema wins for unqualified
		// references.
		if scope != "" {
			if src, obj, ok := p.resolveIn(scope, parts); ok {
				if src.scan == nil || !src.streams {
					return source{}, hdm.Scheme{}, nil, false
				}
				return src, obj, append(deps, obj.Key()), true
			}
		}
		// 2. Virtual objects: chase a sole full-extent bare-rename
		// derivation; any other shape (computed body, Lower bound,
		// several derivations, memoised extent) materialises.
		key := strings.Join(parts, "|")
		p.mu.Lock()
		derivs, virtual := p.defs[key]
		var d Derivation
		if virtual && len(derivs) == 1 {
			d = derivs[0]
		}
		p.mu.Unlock()
		if virtual {
			if len(derivs) != 1 || d.Lower || p.memo.Peek(key) {
				return source{}, hdm.Scheme{}, nil, false
			}
			ref, ok := d.Query.(*iql.SchemeRef)
			if !ok {
				return source{}, hdm.Scheme{}, nil, false
			}
			// The virtual key heads its dependency set exactly as in
			// virtualExtent: a new derivation registered for it must
			// invalidate whatever this stream feeds.
			deps = append(deps, key)
			parts = ref.Parts
			scope = d.Scope
			continue
		}
		// 3. Unambiguous global source resolution.
		hits := p.resolveGlobal(parts)
		if len(hits) != 1 {
			return source{}, hdm.Scheme{}, nil, false
		}
		src, obj := hits[0].src, hits[0].sc
		if src.scan == nil || !src.streams {
			return source{}, hdm.Scheme{}, nil, false
		}
		return src, obj, append(deps, key, obj.Key()), true
	}
	return source{}, hdm.Scheme{}, nil, false
}

// sourceStream opens a scanner on one source object and decides,
// through a spill probe of buf+1 rows, whether the extent is worth
// streaming. Small extents are materialised from the probe, cached and
// recorded exactly like a wrapper fetch, then served from the cache by
// the materialised path (ok=false). Failures before the stream is
// committed also return ok=false without recording a breaker outcome:
// the materialised path refetches and its outcome is authoritative.
func (p *Processor) sourceStream(s *session, src source, sc hdm.Scheme, buf int) (iql.RowStream, bool) {
	key := sc.Key()
	ck := src.name + "\x00" + key
	if p.srcExt.Peek(ck) {
		return nil, false // cached: the materialised path serves it without touching the source
	}
	br := p.breakerFor(src.name)
	if br != nil {
		if proceed, _ := br.allow(); !proceed {
			return nil, false // breaker open: materialised path takes the stale route
		}
	}

	// Span and metrics bookkeeping mirror source.fetch: one StageFetch
	// span parents the scanner's per-page spans, and completion feeds
	// rows/bytes/retries into the same per-source registry.
	start := time.Now()
	sp, sctx := obs.StartSpan(s.ctx, obs.StageFetch, src.name)
	sp.SetDetail(key)
	sp.SetCache(obs.CacheMiss)
	sources := obs.SourcesFrom(s.ctx)
	var fs *obs.FetchStat
	base := sctx
	if base != nil {
		base, fs = obs.BeginFetch(base)
	} else {
		base = context.Background()
	}
	cctx, cancel := context.WithCancel(base)

	// finish records the scan's one outcome: breaker verdict, span end,
	// per-source metrics. aborted=true means the consumer walked away
	// (early Close, request cancellation) — that says nothing about the
	// source, so no outcome is recorded against the breaker.
	finished := false
	finish := func(ferr error, rows int64, aborted bool) {
		if finished {
			return
		}
		finished = true
		if br != nil {
			if aborted {
				br.cancelProbe()
			} else {
				br.record(ferr == nil, ferr)
			}
		}
		sp.SetRows(rows)
		sp.SetBytes(fs.Bytes())
		sp.SetRetries(fs.Retries())
		sp.End(ferr)
		sources.Observe(src.name, src.kind, time.Since(start), rows, fs.Bytes(), fs.Retries(), ferr)
	}

	scn, err := src.scan.ExtentScanner(cctx, sc.Parts())
	if err != nil {
		cancel()
		if br != nil {
			br.cancelProbe()
		}
		sp.End(err)
		return nil, false
	}

	// Spill probe: read up to buf+1 rows. Exhausting the scanner within
	// buf rows means the extent is small enough to materialise.
	var probe []iql.Value
	for len(probe) <= buf {
		if !scn.Next(cctx) {
			if serr := scn.Err(); serr != nil {
				scn.Close()
				cancel()
				if br != nil {
					br.cancelProbe()
				}
				sp.End(serr)
				return nil, false
			}
			// Small extent: materialise, cache, and serve through the
			// materialised path so semantics (and cache behaviour) are
			// byte-identical to a plain wrapper fetch.
			scn.Close()
			cancel()
			v := iql.BagOf(probe)
			p.noteGood(ck, v)
			p.srcExt.Put(ck, v, v.Footprint(), []string{key})
			finished = true
			if br != nil {
				br.record(true, nil)
			}
			bytes := fs.Bytes()
			if bytes == 0 {
				// Mirror source.fetch's fallback when the wrapper
				// reported no wire bytes.
				bytes = v.Footprint()
			}
			rows := int64(len(probe))
			sp.SetRows(rows)
			sp.SetBytes(bytes)
			sp.SetRetries(fs.Retries())
			sp.End(nil)
			sources.Observe(src.name, src.kind, time.Since(start), rows, bytes, fs.Retries(), nil)
			return nil, false
		}
		probe = append(probe, scn.Row())
	}

	st := &sourceStream{
		prefix: probe,
		ch:     make(chan iql.Value, buf),
		done:   make(chan struct{}),
		cancel: cancel,
		scn:    scn,
		reqCtx: s.ctx,
		finish: finish,
	}
	go st.pump(cctx)
	return st, true
}

// sourceStream is the iql.RowStream the evaluator consumes: the spill
// probe's rows first, then rows pumped from the scanner through a
// bounded channel by a prefetch goroutine. At most prefix+channel
// capacity rows are resident at once.
type sourceStream struct {
	prefix []iql.Value
	i      int
	ch     chan iql.Value
	cur    iql.Value

	// ferr is the pump's terminal error; it is written before ch is
	// closed, and the consumer reads it only after observing the close,
	// so the channel provides the happens-before edge.
	ferr error
	done chan struct{}

	cancel context.CancelFunc
	scn    wrapper.Scanner
	reqCtx context.Context
	finish func(ferr error, rows int64, aborted bool)

	rows   int64
	err    error
	closed bool
}

// pump feeds the scanner's rows into the bounded channel until the
// scanner ends or the stream is cancelled.
func (st *sourceStream) pump(ctx context.Context) {
	var ferr error
loop:
	for st.scn.Next(ctx) {
		select {
		case st.ch <- st.scn.Row():
		case <-ctx.Done():
			ferr = ctx.Err()
			break loop
		}
	}
	if ferr == nil {
		ferr = st.scn.Err()
	}
	st.ferr = ferr
	close(st.ch)
	close(st.done)
}

func (st *sourceStream) Next() bool {
	if st.closed || st.err != nil {
		return false
	}
	if st.i < len(st.prefix) {
		st.cur = st.prefix[st.i]
		st.i++
		st.rows++
		return true
	}
	v, ok := <-st.ch
	if !ok {
		st.terminate(st.ferr)
		return false
	}
	st.cur = v
	st.rows++
	return true
}

func (st *sourceStream) Row() iql.Value { return st.cur }

func (st *sourceStream) Err() error { return st.err }

// terminate settles the stream after the pump exits: releases the
// scanner and records the scan's outcome exactly once.
func (st *sourceStream) terminate(ferr error) {
	st.err = ferr
	st.cancel()
	st.scn.Close()
	aborted := ferr != nil && st.reqCtx != nil && st.reqCtx.Err() != nil
	st.finish(ferr, st.rows, aborted)
	st.prefix = nil
}

// Close releases the stream at any point; it is idempotent and safe
// after exhaustion. Closing before exhaustion cancels the pump, waits
// for it to exit, and releases the scanner; no breaker outcome is
// recorded then, because an abandoned scan says nothing about the
// source. (cancel, the scanner's Close, and finish are all idempotent,
// so a stream already settled by terminate is a no-op here.)
func (st *sourceStream) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	st.cancel()
	<-st.done
	st.scn.Close()
	st.finish(nil, st.rows, true)
	st.prefix = nil
	return nil
}
