// Per-source circuit breakers and stale-extent fallback: the
// fault-tolerance layer between the query processor and its wrappers.
//
// Every registered source gets a breaker in the classic three states.
// Closed passes fetches through while tracking outcomes in a rolling
// window; it opens after a run of consecutive errors or when the
// window's failure rate crosses the threshold. Open short-circuits
// fetches entirely (the source gets no traffic) until a jittered probe
// interval elapses; the breaker then goes half-open and admits exactly
// one probe fetch, closing on success and re-opening on failure.
//
// While a source is unreachable — breaker open, or a fetch failed —
// the processor serves the last-known-good extent it retained from the
// most recent successful fetch (or, failing that, the wrapper's own
// snapshot fallback), stamping the evaluation with a structured
// degraded warning so callers can tell a stale answer from a fresh
// one. Strict-freshness policy lives above this layer: the server
// turns degraded answers into errors when asked to.
package query

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// BreakerConfig tunes the per-source circuit breakers and the
// stale-extent fallback. The zero value disables the whole layer;
// enabling it with zero thresholds applies the defaults below.
type BreakerConfig struct {
	// Enabled turns the fault-tolerance layer on. Off, fetches behave
	// exactly as without breakers: failures propagate to the query.
	Enabled bool
	// Window is the rolling count of recent fetch outcomes consulted by
	// the failure-rate threshold (default 16).
	Window int
	// FailureRate opens the breaker when the window holds at least
	// MinSamples outcomes and the failing fraction reaches this value
	// (default 0.5).
	FailureRate float64
	// MinSamples is the minimum number of windowed outcomes before the
	// failure rate applies (default 4).
	MinSamples int
	// Consecutive opens the breaker immediately after this many
	// consecutive fetch errors (default 3).
	Consecutive int
	// OpenFor is the base interval an open breaker waits before
	// admitting a half-open probe; the actual wait is jittered in
	// [0.5·OpenFor, 1.5·OpenFor) so probes across sources do not
	// synchronise (default 2s).
	OpenFor time.Duration
	// SourceTimeout is the per-fetch deadline budget: each wrapper
	// fetch runs under min(request deadline, SourceTimeout), so one
	// slow backend cannot eat a whole query's context (0 = none).
	SourceTimeout time.Duration
	// DisableFallback turns off stale-extent fallback: breaker-open and
	// failed fetches then error instead of serving last-known-good data.
	DisableFallback bool
	// Seed seeds the deterministic probe-jitter stream (0 = 1).
	Seed uint64
}

// withDefaults resolves zero thresholds to the documented defaults.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// stateName renders a breaker state for health reports and metrics.
func stateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is one source's circuit breaker. All fields are guarded by
// mu; now is a test seam.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	rng       *rand.Rand
	state     int
	window    []bool // ring of outcomes, true = failure
	widx      int
	wlen      int
	fails     int // failures currently in the window
	consec    int // consecutive failures
	openedAt  time.Time
	retryAt   time.Time
	probing   bool // a half-open probe fetch is in flight
	opens     uint64
	probes    uint64
	fallbacks uint64
	lastErr   string
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{
		cfg:    cfg,
		now:    time.Now,
		rng:    rand.New(rand.NewPCG(cfg.Seed, 0xb4ea4e4)),
		window: make([]bool, cfg.Window),
	}
}

// allow reports whether a fetch may proceed. In the open state it
// transitions to half-open once the jittered probe interval has
// elapsed, admitting exactly one probe at a time; probe is true for
// that admitted probe fetch.
func (b *breaker) allow() (proceed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Before(b.retryAt) {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.probes++
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		b.probes++
		return true, true
	}
}

// probeAllow admits a fetch only when the breaker needs probing: open
// with the interval elapsed, or half-open with no probe in flight.
// Closed breakers are left alone.
func (b *breaker) probeAllow() bool {
	b.mu.Lock()
	closed := b.state == breakerClosed
	b.mu.Unlock()
	if closed {
		return false
	}
	proceed, _ := b.allow()
	return proceed
}

// record folds one fetch outcome into the breaker. A success closes a
// half-open breaker (and resets the window); a failure re-opens it, or
// opens a closed breaker once a threshold trips.
func (b *breaker) record(ok bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.push(false)
		b.consec = 0
		b.lastErr = ""
		if b.state != breakerClosed {
			b.state = breakerClosed
			b.reset()
		}
		return
	}
	b.push(true)
	b.consec++
	b.lastErr = compactErr(err)
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		if b.consec >= b.cfg.Consecutive ||
			(b.wlen >= b.cfg.MinSamples && float64(b.fails) >= b.cfg.FailureRate*float64(b.wlen)) {
			b.open()
		}
	}
}

// cancelProbe releases a half-open probe slot without recording an
// outcome (the fetch was aborted by its request's own cancellation,
// which says nothing about the source).
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// open transitions to the open state with a fresh jittered retry time.
// Caller holds mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.opens++
	b.openedAt = b.now()
	d := b.cfg.OpenFor
	jittered := d/2 + time.Duration(b.rng.Int64N(int64(d)))
	b.retryAt = b.openedAt.Add(jittered)
}

// push adds one outcome to the rolling window. Caller holds mu.
func (b *breaker) push(fail bool) {
	if b.wlen == len(b.window) {
		if b.window[b.widx] {
			b.fails--
		}
	} else {
		b.wlen++
	}
	b.window[b.widx] = fail
	if fail {
		b.fails++
	}
	b.widx = (b.widx + 1) % len(b.window)
}

// reset clears the rolling window. Caller holds mu.
func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.widx, b.wlen, b.fails = 0, 0, 0
}

// noteFallback counts one stale extent served for this source.
func (b *breaker) noteFallback() {
	b.mu.Lock()
	b.fallbacks++
	b.mu.Unlock()
}

// lastError returns the most recent failure's compact message.
func (b *breaker) lastError() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// health snapshots the breaker for /healthz and metrics.
func (b *breaker) health() SourceHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := SourceHealth{
		State:               stateName(b.state),
		ConsecutiveFailures: b.consec,
		WindowSize:          b.wlen,
		Opens:               b.opens,
		Probes:              b.probes,
		Fallbacks:           b.fallbacks,
		LastError:           b.lastErr,
	}
	if b.wlen > 0 {
		h.FailureRate = float64(b.fails) / float64(b.wlen)
	}
	if b.state == breakerOpen {
		if d := b.retryAt.Sub(b.now()); d > 0 {
			h.RetryInMs = d.Milliseconds()
		}
	}
	return h
}

// SourceHealth is one source's breaker state, as reported by
// Processor.SourceHealth (and surfaced in /healthz and /metrics).
type SourceHealth struct {
	Source              string  `json:"source"`
	Kind                string  `json:"kind"`
	State               string  `json:"state"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	FailureRate         float64 `json:"failure_rate"`
	WindowSize          int     `json:"window"`
	Opens               uint64  `json:"opens_total"`
	Probes              uint64  `json:"probes_total"`
	Fallbacks           uint64  `json:"fallbacks_total"`
	RetryInMs           int64   `json:"retry_in_ms,omitempty"`
	LastError           string  `json:"last_error,omitempty"`
}

// Pinger is the optional liveness extension of an extent provider:
// wrappers over remote backends implement it so federation and
// probe-driven recovery can test reachability without fetching data.
type Pinger interface {
	Ping(ctx context.Context) error
}

// FallbackSourcer is the optional stale-fallback extension of an
// extent provider: wrappers that retain offline extents (e.g. REST and
// SQL snapshot fallbacks) expose them so breaker-open fetches can be
// answered from them when the processor has no fresher last-known-good
// copy of its own.
type FallbackSourcer interface {
	FallbackExtent(parts []string) (iql.Value, bool)
}

// DegradedPrefix tags warnings that mark an answer as degraded:
// evaluated over stale (last-known-good or snapshot-fallback) extents
// because a source was unreachable. Strict-freshness callers match on
// it to refuse such answers.
const DegradedPrefix = "degraded: "

// IsDegraded reports whether a warning marks a stale-data answer.
func IsDegraded(warn string) bool {
	return strings.HasPrefix(warn, DegradedPrefix)
}

// degradedWarning renders the structured degraded warning: source,
// object, staleness age (negative = unknown) and cause.
func degradedWarning(source string, sc hdm.Scheme, age time.Duration, cause string) string {
	ageStr := "unknown"
	if age >= 0 {
		ageStr = age.Round(time.Millisecond).String()
	}
	return fmt.Sprintf("%ssource %s: serving stale extent for <<%s>> (age %s; cause: %s)",
		DegradedPrefix, source, strings.Join(sc.Parts(), ", "), ageStr, cause)
}

// compactErr flattens an error to one line for warnings and health
// reports.
func compactErr(err error) string {
	if err == nil {
		return ""
	}
	return strings.Join(strings.Fields(err.Error()), " ")
}
