package query

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// flakySource is a controllable Sourcer: failures are toggled at will,
// fetches are counted, and hang mode blocks until the fetch context is
// cancelled. It optionally exposes a snapshot fallback extent.
type flakySource struct {
	name   string
	schema *hdm.Schema
	val    iql.Value

	mu       sync.Mutex
	failing  bool
	hanging  bool
	calls    int
	fallback *iql.Value
}

func newFlakySource(t *testing.T, name string) *flakySource {
	t.Helper()
	sch := hdm.NewSchema(name)
	sch.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "", ""))
	return &flakySource{
		name:   name,
		schema: sch,
		val:    iql.Bag(iql.Int(1), iql.Int(2), iql.Int(3)),
	}
}

func (f *flakySource) SchemaName() string  { return f.name }
func (f *flakySource) Schema() *hdm.Schema { return f.schema }

func (f *flakySource) setFailing(v bool) {
	f.mu.Lock()
	f.failing = v
	f.mu.Unlock()
}

func (f *flakySource) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *flakySource) Extent(parts []string) (iql.Value, error) {
	return f.ExtentContext(context.Background(), parts)
}

func (f *flakySource) ExtentContext(ctx context.Context, parts []string) (iql.Value, error) {
	f.mu.Lock()
	f.calls++
	failing, hanging := f.failing, f.hanging
	f.mu.Unlock()
	if hanging {
		<-ctx.Done()
		return iql.Value{}, ctx.Err()
	}
	if failing {
		return iql.Value{}, fmt.Errorf("flaky: source %s is down", f.name)
	}
	return f.val, nil
}

func (f *flakySource) FallbackExtent(parts []string) (iql.Value, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fallback == nil {
		return iql.Value{}, false
	}
	return *f.fallback, true
}

// testBreakerConfig keeps probe intervals long so tests control
// half-open transitions explicitly.
func testBreakerConfig() BreakerConfig {
	return BreakerConfig{Enabled: true, Consecutive: 3, OpenFor: time.Hour}
}

func newBreakerProc(t *testing.T, src *flakySource, cfg BreakerConfig) *Processor {
	t.Helper()
	p := New()
	p.SetBreaker(cfg)
	if err := p.AddSource(src); err != nil {
		t.Fatal(err)
	}
	return p
}

// evalCount evaluates count(<<t>>) with a cold extent cache so every
// call reaches the breaker (warm caches would otherwise shield it).
func evalCount(t *testing.T, p *Processor) (iql.Value, []string, error) {
	t.Helper()
	p.InvalidateCache()
	v, warns, _, err := p.EvalContext(context.Background(), iql.MustParse("count(<<t>>)"))
	return v, warns, err
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{Enabled: true, Consecutive: 2, OpenFor: time.Minute}.withDefaults()
	b := newBreaker(cfg)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if proceed, probe := b.allow(); !proceed || probe {
		t.Fatalf("closed breaker: allow = (%v, %v), want (true, false)", proceed, probe)
	}
	b.record(false, errors.New("boom"))
	if st := b.health().State; st != "closed" {
		t.Fatalf("after 1 failure state = %s, want closed", st)
	}
	b.record(false, errors.New("boom"))
	if st := b.health().State; st != "open" {
		t.Fatalf("after %d consecutive failures state = %s, want open", cfg.Consecutive, st)
	}
	if proceed, _ := b.allow(); proceed {
		t.Fatal("open breaker admitted a fetch before the probe interval")
	}

	// Jitter keeps the retry time within [OpenFor/2, 3*OpenFor/2).
	if h := b.health(); h.RetryInMs < cfg.OpenFor.Milliseconds()/2 || h.RetryInMs >= 3*cfg.OpenFor.Milliseconds()/2 {
		t.Errorf("retry_in_ms = %d, want within [%d, %d)", h.RetryInMs, cfg.OpenFor.Milliseconds()/2, 3*cfg.OpenFor.Milliseconds()/2)
	}

	// Past the probe interval: exactly one probe admitted at a time.
	now = now.Add(2 * cfg.OpenFor)
	proceed, probe := b.allow()
	if !proceed || !probe {
		t.Fatalf("elapsed open breaker: allow = (%v, %v), want (true, true)", proceed, probe)
	}
	if proceed, _ := b.allow(); proceed {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.record(false, errors.New("still down"))
	if st := b.health().State; st != "open" {
		t.Fatalf("failed probe left state %s, want open", st)
	}

	now = now.Add(2 * cfg.OpenFor)
	if proceed, _ := b.allow(); !proceed {
		t.Fatal("re-opened breaker refused the next probe after the interval")
	}
	b.record(true, nil)
	h := b.health()
	if h.State != "closed" || h.ConsecutiveFailures != 0 || h.FailureRate != 0 {
		t.Fatalf("successful probe: health = %+v, want closed with reset window", h)
	}
	if h.Opens != 2 || h.Probes != 2 {
		t.Errorf("opens = %d probes = %d, want 2 and 2", h.Opens, h.Probes)
	}
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	cfg := BreakerConfig{Enabled: true, Window: 8, MinSamples: 4, FailureRate: 0.5, Consecutive: 100, OpenFor: time.Hour}.withDefaults()
	b := newBreaker(cfg)
	// Alternate success/failure: consecutive never accumulates, but the
	// windowed rate reaches 0.5 once MinSamples outcomes are in.
	outcomes := []bool{true, false, true, false}
	for _, ok := range outcomes {
		var err error
		if !ok {
			err = errors.New("boom")
		}
		b.record(ok, err)
	}
	if st := b.health().State; st != "open" {
		t.Fatalf("state after 50%% failures over %d samples = %s, want open", len(outcomes), st)
	}
}

func TestStaleFallbackServesLastKnownGood(t *testing.T) {
	src := newFlakySource(t, "S")
	p := newBreakerProc(t, src, testBreakerConfig())

	// Warm the last-known-good copy with a healthy fetch.
	if _, warns, err := evalCount(t, p); err != nil || len(warns) != 0 {
		t.Fatalf("healthy query: warns=%v err=%v", warns, err)
	}

	src.setFailing(true)
	v, warns, err := evalCount(t, p)
	if err != nil {
		t.Fatalf("query with fallback available failed: %v", err)
	}
	if v.Kind != iql.KindInt || v.I != 3 {
		t.Fatalf("stale answer = %s, want 3", v)
	}
	if len(warns) != 1 || !IsDegraded(warns[0]) {
		t.Fatalf("warnings = %v, want one degraded warning", warns)
	}
	if !strings.Contains(warns[0], "source S") || !strings.Contains(warns[0], "fetch failed") {
		t.Errorf("degraded warning %q does not name the source and cause", warns[0])
	}

	// Two more cold-cache queries trip the consecutive threshold; the
	// breaker then short-circuits fetches entirely.
	evalCount(t, p)
	evalCount(t, p)
	health := p.SourceHealth()
	if len(health) != 1 || health[0].State != "open" {
		t.Fatalf("health = %+v, want S open", health)
	}
	fetched := src.callCount()
	v, warns, err = evalCount(t, p)
	if err != nil || v.I != 3 || len(warns) != 1 || !IsDegraded(warns[0]) {
		t.Fatalf("breaker-open query: v=%s warns=%v err=%v", v, warns, err)
	}
	if !strings.Contains(warns[0], "breaker open") {
		t.Errorf("breaker-open warning %q does not carry the cause", warns[0])
	}
	if got := src.callCount(); got != fetched {
		t.Errorf("open breaker let %d fetches through", got-fetched)
	}
}

func TestDisableFallbackFailsClosed(t *testing.T) {
	src := newFlakySource(t, "S")
	cfg := testBreakerConfig()
	cfg.DisableFallback = true
	p := newBreakerProc(t, src, cfg)

	if _, _, err := evalCount(t, p); err != nil {
		t.Fatal(err)
	}
	src.setFailing(true)
	if _, _, err := evalCount(t, p); err == nil {
		t.Fatal("DisableFallback still served a stale answer")
	}
}

func TestWrapperFallbackWhenNeverFetched(t *testing.T) {
	// The source fails from the very first fetch, so there is no
	// last-known-good copy; the wrapper's own snapshot fallback answers.
	src := newFlakySource(t, "S")
	fb := iql.Bag(iql.Int(9))
	src.fallback = &fb
	src.setFailing(true)
	p := newBreakerProc(t, src, testBreakerConfig())

	v, warns, err := evalCount(t, p)
	if err != nil {
		t.Fatalf("query with wrapper fallback failed: %v", err)
	}
	if v.I != 1 {
		t.Fatalf("fallback answer = %s, want count 1", v)
	}
	if len(warns) != 1 || !IsDegraded(warns[0]) || !strings.Contains(warns[0], "age unknown") {
		t.Fatalf("warnings = %v, want one degraded warning with unknown age", warns)
	}
}

func TestNoFallbackAvailableErrors(t *testing.T) {
	src := newFlakySource(t, "S")
	src.setFailing(true)
	p := newBreakerProc(t, src, testBreakerConfig())
	_, _, err := evalCount(t, p)
	if err == nil || !strings.Contains(err.Error(), "no fallback extent") {
		t.Fatalf("err = %v, want no-fallback error", err)
	}
}

func TestSourceTimeoutBoundsHangingFetch(t *testing.T) {
	src := newFlakySource(t, "S")
	cfg := testBreakerConfig()
	cfg.SourceTimeout = 50 * time.Millisecond
	p := newBreakerProc(t, src, cfg)

	if _, _, err := evalCount(t, p); err != nil {
		t.Fatal(err)
	}
	src.mu.Lock()
	src.hanging = true
	src.mu.Unlock()

	start := time.Now()
	v, warns, err := evalCount(t, p)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hang with fallback available failed: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hanging source held the query for %v; SourceTimeout did not cut it", elapsed)
	}
	if v.I != 3 || len(warns) != 1 || !IsDegraded(warns[0]) {
		t.Fatalf("hang fallback: v=%s warns=%v", v, warns)
	}
}

func TestRequestCancellationDoesNotTripBreaker(t *testing.T) {
	src := newFlakySource(t, "S")
	src.mu.Lock()
	src.hanging = true
	src.mu.Unlock()
	p := newBreakerProc(t, src, testBreakerConfig())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, _, err := p.EvalContext(ctx, iql.MustParse("count(<<t>>)")); err == nil {
		t.Fatal("hanging fetch beat its request deadline")
	}
	h := p.SourceHealth()
	if len(h) != 1 || h[0].ConsecutiveFailures != 0 || h[0].State != "closed" {
		t.Fatalf("request cancellation counted against the source: %+v", h)
	}
}

func TestProbeOpenRecoversSource(t *testing.T) {
	src := newFlakySource(t, "S")
	cfg := testBreakerConfig()
	cfg.OpenFor = time.Millisecond
	p := newBreakerProc(t, src, cfg)

	if _, _, err := evalCount(t, p); err != nil {
		t.Fatal(err)
	}
	src.setFailing(true)
	for i := 0; i < 3; i++ {
		evalCount(t, p)
	}
	if h := p.SourceHealth(); h[0].State != "open" {
		t.Fatalf("state = %s, want open", h[0].State)
	}

	// Probe while still down: the breaker must stay open.
	time.Sleep(5 * time.Millisecond)
	if n := p.ProbeOpen(context.Background()); n != 0 {
		t.Fatalf("probe of a down source recovered %d", n)
	}
	if h := p.SourceHealth(); h[0].State != "open" {
		t.Fatalf("state after failed probe = %s, want open", h[0].State)
	}

	// Heal and probe again: the breaker closes and the next query is
	// fresh (no degraded warning).
	src.setFailing(false)
	deadline := time.Now().Add(2 * time.Second)
	for p.ProbeOpen(context.Background()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe never recovered the healed source")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := p.SourceHealth(); h[0].State != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", h[0].State)
	}
	v, warns, err := evalCount(t, p)
	if err != nil || v.I != 3 || len(warns) != 0 {
		t.Fatalf("post-recovery query: v=%s warns=%v err=%v", v, warns, err)
	}
}

func TestBreakerDisabledPropagatesErrors(t *testing.T) {
	src := newFlakySource(t, "S")
	src.setFailing(true)
	p := New() // zero config: no breakers
	if err := p.AddSource(src); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p.EvalContext(context.Background(), iql.MustParse("count(<<t>>)")); err == nil {
		t.Fatal("disabled breaker layer swallowed a fetch error")
	}
	if h := p.SourceHealth(); h != nil {
		t.Fatalf("SourceHealth with breakers disabled = %+v, want nil", h)
	}
}
