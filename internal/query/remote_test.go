package query

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
	"github.com/dataspace/automed/internal/wrapper"
)

// slowRESTBackend serves one collection per source with an injected
// per-request latency and per-path request accounting.
type slowRESTBackend struct {
	srv   *httptest.Server
	delay time.Duration

	mu    sync.Mutex
	calls map[string]int
}

func newSlowRESTBackend(t *testing.T, delay time.Duration, payloads map[string]string) *slowRESTBackend {
	t.Helper()
	b := &slowRESTBackend{delay: delay, calls: make(map[string]int)}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		b.calls[r.URL.Path]++
		b.mu.Unlock()
		time.Sleep(b.delay)
		body, ok := payloads[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, body)
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func (b *slowRESTBackend) callCount(path string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls[path]
}

// TestRemoteWrapperPrefetchOverlap is the concurrency regression guard
// for remote sources: a join over two collections of a deliberately
// slow REST backend must pay roughly the maximum of the two fetch
// latencies (the prefetch pool overlaps them), not their sum, and the
// backend must see exactly one request per extent — the prefetched
// fetch and the evaluation's fetch coalesce through singleflight.
func TestRemoteWrapperPrefetchOverlap(t *testing.T) {
	const delay = 100 * time.Millisecond
	backend := newSlowRESTBackend(t, delay, map[string]string{
		"/r": `[{"id": 1, "k": 10}, {"id": 2, "k": 20}]`,
		"/s": `[{"id": 3, "k": 10}, {"id": 4, "k": 20}]`,
	})
	newSource := func(name, coll string) *wrapper.REST {
		w, err := wrapper.NewREST(name, wrapper.RESTConfig{
			Endpoint:    backend.srv.URL,
			Collections: []wrapper.RESTCollection{{Name: coll, Fields: []string{"id", "k"}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	p := New()
	if err := p.AddSource(newSource("A", "r")); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource(newSource("B", "s")); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	v, err := p.Query(`[{x, y} | {x, kx} <- <<r, k>>; {y, ky} <- <<s, k>>; ky = kx]`)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("join result = %s", v)
	}
	// Serial fetching would cost >= 2*delay; overlapped fetching costs
	// ~max = 1*delay. The bound distinguishes the two with CI headroom.
	if elapsed >= 2*delay {
		t.Errorf("query took %v over two %v-slow remote sources; fetches did not overlap", elapsed, delay)
	}
	for _, path := range []string{"/r", "/s"} {
		if got := backend.callCount(path); got != 1 {
			t.Errorf("backend saw %d requests for %s, want exactly 1 (singleflight)", got, path)
		}
	}
}

// TestCoalescedFetchSurvivesInitiatorCancellation: when a short-
// deadline request initiates a slow remote fetch and a healthy request
// coalesces onto it, the initiator's cancellation must not fail the
// healthy request — it retries the fetch under its own context.
func TestCoalescedFetchSurvivesInitiatorCancellation(t *testing.T) {
	const delay = 150 * time.Millisecond
	backend := newSlowRESTBackend(t, delay, map[string]string{
		"/r": `[{"id": 1}, {"id": 2}]`,
	})
	w, err := wrapper.NewREST("A", wrapper.RESTConfig{
		Endpoint:    backend.srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "r", Fields: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}

	shortCtx, cancelShort := context.WithTimeout(context.Background(), delay/3)
	defer cancelShort()
	done := make(chan error, 1)
	go func() {
		_, _, _, err := p.EvalContext(shortCtx, iql.MustParse("count(<<r>>)"))
		done <- err
	}()
	// Let the short request initiate the fetch, then coalesce onto it
	// with a request that has all the time in the world.
	time.Sleep(delay / 6)
	v, _, _, err := p.EvalContext(context.Background(), iql.MustParse("count(<<r>>)"))
	if err != nil {
		t.Fatalf("healthy request inherited the initiator's cancellation: %v", err)
	}
	if v.Kind != iql.KindInt || v.I != 2 {
		t.Fatalf("count = %s, want 2", v)
	}
	if err := <-done; err == nil {
		t.Error("short-deadline request unexpectedly succeeded")
	}
}

// TestRemoteSQLQueryHonoursDeadline checks a per-request deadline cuts
// through to a slow SQL backend mid-fetch instead of waiting it out.
func TestRemoteSQLQueryHonoursDeadline(t *testing.T) {
	db := rel.NewDB("S")
	tb := db.MustCreateTable("t", []rel.Column{{Name: "id", Type: rel.Int}}, "")
	tb.MustInsert(int64(1))
	const dsn = "query-slow-sql"
	sqlmem.Register(dsn, db)
	w, err := wrapper.NewSQL("S", wrapper.SQLConfig{Driver: sqlmem.DriverName, DSN: dsn})
	if err != nil {
		t.Fatal(err)
	}
	// Introspection is done; only extent fetches pay the delay.
	sqlmem.SetDelay(dsn, 5*time.Second)
	p := New()
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, _, err = p.EvalContext(ctx, iql.MustParse("count(<<t>>)"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a 5s-slow backend beat a 50ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline enforcement took %v; cancellation did not reach the backend fetch", elapsed)
	}
}
