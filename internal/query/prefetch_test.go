package query

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// countingSource wraps an Extents with fetch accounting: total calls,
// and the high-water mark of concurrently in-flight calls.
type countingSource struct {
	name   string
	schema *hdm.Schema
	ext    iql.Extents

	mu       sync.Mutex
	calls    int
	inFlight int
	maxIn    int
	delay    time.Duration
}

func (c *countingSource) SchemaName() string { return c.name }
func (c *countingSource) Schema() *hdm.Schema {
	return c.schema
}
func (c *countingSource) Extent(parts []string) (iql.Value, error) {
	c.mu.Lock()
	c.calls++
	c.inFlight++
	if c.inFlight > c.maxIn {
		c.maxIn = c.inFlight
	}
	c.mu.Unlock()
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	v, err := c.ext.Extent(parts)
	c.mu.Lock()
	c.inFlight--
	c.mu.Unlock()
	return v, err
}

func newCountingSource(t *testing.T, name string, extents map[string]iql.Value, delay time.Duration) *countingSource {
	t.Helper()
	w := staticSource(t, name, extents)
	return &countingSource{name: name, schema: w.Schema(), ext: iql.ExtentsFunc(w.Extent), delay: delay}
}

// multiSourceJoin builds a processor over two delayed sources and a
// virtual object defined over both.
func multiSourceJoin(t *testing.T, delay time.Duration) (*Processor, *countingSource, *countingSource) {
	t.Helper()
	a := newCountingSource(t, "A", map[string]iql.Value{
		"<<r>>": iql.Bag(
			iql.Tuple(iql.Int(1), iql.Int(10)),
			iql.Tuple(iql.Int(2), iql.Int(20)),
		),
	}, delay)
	b := newCountingSource(t, "B", map[string]iql.Value{
		"<<s>>": iql.Bag(
			iql.Tuple(iql.Int(3), iql.Int(10)),
			iql.Tuple(iql.Int(4), iql.Int(20)),
		),
	}, delay)
	p := New()
	if err := p.AddSource(a); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource(b); err != nil {
		t.Fatal(err)
	}
	return p, a, b
}

const joinQuery = "[{x, y} | {x, k} <- <<r>>; {y, k2} <- <<s>>; k2 = k]"

func TestPrefetchEquivalence(t *testing.T) {
	// The same query with and without warm caches returns identical
	// results; the prefetched evaluation matches a cold serial one.
	p1, _, _ := multiSourceJoin(t, 0)
	got, err := p1.Query(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _ := multiSourceJoin(t, 0)
	p2.prefetch(context.Background(), iql.MustParse(joinQuery), "")
	warm, err := p2.Query(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(warm) || got.Len() != 2 {
		t.Fatalf("prefetched result %s differs from cold %s", warm, got)
	}
}

func TestPrefetchFetchesConcurrently(t *testing.T) {
	// With two slow sources, the prefetch pass must overlap the
	// fetches: the total query latency stays near one delay, not two,
	// and each extent is fetched exactly once (singleflight).
	const delay = 50 * time.Millisecond
	p, a, b := multiSourceJoin(t, delay)
	start := time.Now()
	v, err := p.Query(joinQuery)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("bad result %s", v)
	}
	if a.calls != 1 || b.calls != 1 {
		t.Fatalf("fetch counts a=%d b=%d, want 1 each (coalesced)", a.calls, b.calls)
	}
	// Serial fetching would take >= 2*delay. Allow generous headroom
	// for slow CI machines while still distinguishing 1x from 2x.
	if elapsed >= 2*delay {
		t.Errorf("query took %v; prefetch did not overlap the %v source delays", elapsed, delay)
	}
}

func TestPrefetchExpandsVirtualDefinitions(t *testing.T) {
	// A query over a virtual object must prefetch the source extents of
	// its derivations concurrently, scope included.
	const delay = 50 * time.Millisecond
	p, a, b := multiSourceJoin(t, delay)
	p.Define(hdm.MustScheme("<<u>>"),
		iql.MustParse("[{x, k} | {x, k} <- <<r>>] ++ [{y, k} | {y, k} <- <<s>>]"),
		"test", "")
	start := time.Now()
	v, err := p.Query("count(<<u>>)")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != iql.KindInt || v.I != 4 {
		t.Fatalf("bad result %s", v)
	}
	if a.calls != 1 || b.calls != 1 {
		t.Fatalf("fetch counts a=%d b=%d, want 1 each", a.calls, b.calls)
	}
	if elapsed >= 2*delay {
		t.Errorf("virtual unfolding took %v; derivation sources were fetched serially", elapsed)
	}
	if got := a.maxIn + b.maxIn; got < 2 {
		t.Errorf("no fetch overlap observed (max in-flight a=%d b=%d)", a.maxIn, b.maxIn)
	}
}

func TestPrefetchHonoursCancelledContext(t *testing.T) {
	p, a, b := multiSourceJoin(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.prefetch(ctx, iql.MustParse(joinQuery), "")
	if a.calls != 0 || b.calls != 0 {
		t.Fatalf("cancelled prefetch still fetched: a=%d b=%d", a.calls, b.calls)
	}
}

func TestPrefetchSkipsWarmExtents(t *testing.T) {
	p, a, b := multiSourceJoin(t, 0)
	if _, err := p.Query(joinQuery); err != nil {
		t.Fatal(err)
	}
	// Everything is cached now: a second prefetch schedules nothing.
	p.prefetch(context.Background(), iql.MustParse(joinQuery), "")
	if a.calls != 1 || b.calls != 1 {
		t.Fatalf("warm prefetch re-fetched: a=%d b=%d", a.calls, b.calls)
	}
}

func TestPrefetchErrorsSurfaceSerially(t *testing.T) {
	// A failing source must not be masked (or duplicated) by prefetch:
	// the query still reports the error with its context.
	var calls atomic.Int32
	w := staticSource(t, "A", map[string]iql.Value{"<<r>>": iql.Bag(iql.Int(1))})
	failing := &countingSource{
		name:   "B",
		schema: staticSource(t, "B", map[string]iql.Value{"<<s>>": iql.Bag()}).Schema(),
		ext: iql.ExtentsFunc(func(parts []string) (iql.Value, error) {
			calls.Add(1)
			return iql.Value{}, context.DeadlineExceeded
		}),
	}
	p := New()
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource(failing); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query("[{x, y} | x <- <<r>>; y <- <<s>>]"); err == nil {
		t.Fatal("failing source did not fail the query")
	}
}

// specJoin builds a processor over a condition source plus one source
// per if-branch arm, so tests can observe which extents the prefetch
// pass warms speculatively.
func specJoin(t *testing.T) (*Processor, *countingSource, *countingSource, *countingSource) {
	t.Helper()
	cond := newCountingSource(t, "C", map[string]iql.Value{"<<r>>": iql.Bag(iql.Int(1))}, 0)
	then := newCountingSource(t, "T", map[string]iql.Value{"<<s>>": iql.Bag(iql.Int(2))}, 0)
	els := newCountingSource(t, "E", map[string]iql.Value{"<<u>>": iql.Bag(iql.Int(3))}, 0)
	p := New()
	for _, w := range []*countingSource{cond, then, els} {
		if err := p.AddSource(w); err != nil {
			t.Fatal(err)
		}
	}
	return p, cond, then, els
}

const ifQuery = "if count(<<r>>) > 0 then [x | x <- <<s>>] else [x | x <- <<u>>]"

// waitForCalls polls until the source has fetched exactly want extents
// (speculative warms are detached, so tests must wait, not assume).
func waitForCalls(t *testing.T, c *countingSource, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		got := c.calls
		c.mu.Unlock()
		if got >= want {
			if got > want {
				t.Fatalf("source %s fetched %d times, want %d", c.name, got, want)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("source %s never reached %d fetches", c.name, want)
}

// TestPrefetchSpeculativeIfBranches: extents referenced only inside
// if-branch arms are warmed in the background — both arms, even though
// evaluation will take only one — without being awaited, and the warm
// cache means the taken branch never re-fetches.
func TestPrefetchSpeculativeIfBranches(t *testing.T) {
	p, cond, then, els := specJoin(t)
	p.prefetch(context.Background(), iql.MustParse(ifQuery), "")
	waitForCalls(t, cond, 1) // certain: the condition's own extent
	waitForCalls(t, then, 1) // speculative: then arm
	waitForCalls(t, els, 1)  // speculative: else arm
	v, err := p.Query(ifQuery)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatalf("bad result %s", v)
	}
	// Everything was warmed once; the query itself hit the cache.
	waitForCalls(t, then, 1)
}

// TestPrefetchSpeculativeCap: the speculative task list is capped at a
// quarter of the per-query task budget at scheduling time, so cold
// branch arms cannot crowd out certain fetches. With PrefetchMaxTasks=4
// only one speculative slot exists: exactly one arm is warmed.
func TestPrefetchSpeculativeCap(t *testing.T) {
	p, cond, then, els := specJoin(t)
	p.PrefetchMaxTasks = 4
	p.prefetch(context.Background(), iql.MustParse(ifQuery), "")
	waitForCalls(t, cond, 1)
	waitForCalls(t, then, 1) // first arm fills the single speculative slot
	time.Sleep(20 * time.Millisecond)
	els.mu.Lock()
	extra := els.calls
	els.mu.Unlock()
	if extra != 0 {
		t.Errorf("else arm fetched %d times; speculative cap not applied", extra)
	}
}

// TestPrefetchPoolWidthConfigurable: PrefetchWorkers bounds concurrent
// fetches. With one worker and two slow certain tasks, the fetches
// cannot overlap, so the prefetch pass takes at least both delays
// back to back (the default pool overlaps them — see
// TestPrefetchFetchesConcurrently).
func TestPrefetchPoolWidthConfigurable(t *testing.T) {
	const delay = 40 * time.Millisecond
	p, a, b := multiSourceJoin(t, delay)
	p.PrefetchWorkers = 1
	start := time.Now()
	p.prefetch(context.Background(), iql.MustParse(joinQuery), "")
	if elapsed := time.Since(start); elapsed < 2*delay {
		t.Errorf("single-worker prefetch took %v, want >= %v (serialised)", elapsed, 2*delay)
	}
	if a.calls != 1 || b.calls != 1 {
		t.Errorf("fetch counts a=%d b=%d, want 1 each", a.calls, b.calls)
	}
}
