package query

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// countingExtents wraps static extents and counts fetches per scheme
// key, for asserting which extents were recomputed.
type countingExtents struct {
	mu    sync.Mutex
	data  map[string]iql.Value
	calls map[string]int
}

func (c *countingExtents) Extent(parts []string) (iql.Value, error) {
	key := strings.Join(parts, "|")
	c.mu.Lock()
	c.calls[key]++
	v, ok := c.data["<<"+strings.Join(parts, ", ")+">>"]
	c.mu.Unlock()
	if !ok {
		return iql.Value{}, fmt.Errorf("no extent for %s", key)
	}
	return v, nil
}

func (c *countingExtents) count(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[key]
}

// countingProcessor builds a processor over one source schema with two
// independent tables t and w, and two virtual objects u (over t) and
// v (over w).
func countingProcessor(t *testing.T) (*Processor, *countingExtents) {
	t.Helper()
	ext := &countingExtents{
		data: map[string]iql.Value{
			"<<t>>": iql.Bag(iql.Int(1), iql.Int(2)),
			"<<w>>": iql.Bag(iql.Int(10)),
		},
		calls: make(map[string]int),
	}
	sch := hdm.NewSchema("S")
	sch.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "", ""))
	sch.MustAdd(hdm.NewObject(hdm.MustScheme("<<w>>"), hdm.Nodal, "", ""))
	p := New()
	if err := p.AddExtents("S", sch, ext); err != nil {
		t.Fatal(err)
	}
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<t>>]"), "test", "S")
	p.Define(hdm.MustScheme("<<v>>"), iql.MustParse("[k | k <- <<w>>]"), "test", "S")
	return p, ext
}

// TestSelectiveInvalidation is the processor-level contract of the
// dependency-tagged memo: invalidating one scheme recomputes only the
// extents that depend on it, while unrelated memoised extents survive.
func TestSelectiveInvalidation(t *testing.T) {
	p, ext := countingProcessor(t)
	mustExtent := func(key string) iql.Value {
		t.Helper()
		v, err := p.Extent([]string{key})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	mustExtent("u")
	mustExtent("v")
	mustExtent("u")
	mustExtent("v")
	if ext.count("t") != 1 || ext.count("w") != 1 {
		t.Fatalf("fetches = t:%d w:%d, want 1/1 (memoised)", ext.count("t"), ext.count("w"))
	}

	// Invalidate t: u must recompute (and refetch t), v must not.
	if n := p.InvalidateSchemes("t"); n == 0 {
		t.Fatal("InvalidateSchemes(t) evicted nothing")
	}
	mustExtent("u")
	mustExtent("v")
	if ext.count("t") != 2 {
		t.Fatalf("t fetched %d times after invalidation, want 2 (recomputed)", ext.count("t"))
	}
	if ext.count("w") != 1 {
		t.Fatalf("w fetched %d times, want 1 (untouched extent survived)", ext.count("w"))
	}

	// Invalidating the virtual key itself drops its memo entry — but
	// not the source-extent cache below it, so the recomputation
	// re-unfolds without refetching the source.
	memoBefore, _ := p.CacheStats()
	if n := p.InvalidateSchemes("u"); n != 1 {
		t.Fatalf("InvalidateSchemes(u) evicted %d entries, want 1 (u's memo)", n)
	}
	mustExtent("u")
	memoAfter, _ := p.CacheStats()
	if memoAfter.Misses != memoBefore.Misses+1 {
		t.Fatalf("memo misses %d -> %d, want one recompute of u", memoBefore.Misses, memoAfter.Misses)
	}
	if ext.count("t") != 2 {
		t.Fatalf("t fetched %d times after invalidating u, want 2 (source extent cache survived)", ext.count("t"))
	}
}

// TestDefineInvalidatesDependents verifies that registering a new
// derivation for an object evicts the memoised extents of everything
// that referenced it — including references that previously resolved
// straight to a source object.
func TestDefineInvalidatesDependents(t *testing.T) {
	p, _ := countingProcessor(t)
	// g is defined over u; u over t.
	p.Define(hdm.MustScheme("<<g>>"), iql.MustParse("[k | k <- <<u>>]"), "test", "")
	v, err := p.Extent([]string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("g = %s", v)
	}
	// A new derivation for u must flow into g's next answer.
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<w>>]"), "test", "S")
	v, err = p.Extent([]string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Fatalf("g after new derivation for u = %s, want 3 elements", v)
	}

	// An unscoped reference that resolved to a source object must also
	// be invalidated when that name later gains a virtual definition.
	p.Define(hdm.MustScheme("<<h>>"), iql.MustParse("[k | k <- <<w>>]"), "test", "")
	v, _ = p.Extent([]string{"h"})
	if v.Len() != 1 {
		t.Fatalf("h = %s", v)
	}
	// w becomes virtual: h's cached extent depended on the reference
	// key "w" and must be recomputed through the new definition.
	p.Define(hdm.MustScheme("<<w>>"), iql.MustParse("[0 | k <- <<t>>]"), "test", "S")
	v, err = p.Extent([]string{"h"})
	if err != nil {
		t.Fatal(err)
	}
	// h now unfolds w's virtual definition (2 zeros from t) unioned
	// with nothing else; the stale answer had 1 element.
	if v.Len() != 2 {
		t.Fatalf("h after w became virtual = %s, want 2 elements", v)
	}
}

// TestWarningsReplayAcrossInvalidation pins the memo contract that
// survived the refactor: warnings replay on memo hits, and selective
// invalidation does not duplicate or lose them.
func TestWarningsReplayAcrossInvalidation(t *testing.T) {
	p2, _ := countingProcessor(t)
	p2.DefineDerivation(hdm.MustScheme("<<lower>>"), Derivation{
		Query: iql.MustParse("[k | k <- <<t>>]"), Lower: true, Via: "pw", Scope: "S",
	})
	for i := 0; i < 2; i++ {
		_, warns, _, err := p2.EvalContext(context.Background(), iql.MustParse("count(<<lower>>)"))
		if err != nil {
			t.Fatal(err)
		}
		if len(warns) != 1 {
			t.Fatalf("round %d: warnings = %v, want 1 incompleteness warning", i, warns)
		}
	}
	p2.InvalidateSchemes("t")
	_, warns, deps, err := p2.EvalContext(context.Background(), iql.MustParse("count(<<lower>>)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 {
		t.Fatalf("post-invalidation warnings = %v, want 1", warns)
	}
	// The dependency set names both the virtual object and its source.
	wantDeps := map[string]bool{"lower": true, "t": true}
	for _, d := range deps {
		delete(wantDeps, d)
	}
	if len(wantDeps) != 0 {
		t.Fatalf("deps = %v, missing %v", deps, wantDeps)
	}
}

// slowExtents blocks every fetch until released, counting concurrent
// fetches of the same key.
type slowExtents struct {
	gate    chan struct{}
	fetches atomic.Int64
}

func (s *slowExtents) Extent(parts []string) (iql.Value, error) {
	s.fetches.Add(1)
	<-s.gate
	return iql.Bag(iql.Int(1), iql.Int(2)), nil
}

// TestConcurrentSourceFetchCoalesced reproduces the duplicate-fetch bug
// the cache subsystem fixes: goroutines missing the source-extent cache
// simultaneously must share one wrapper fetch, not race to duplicate
// it.
func TestConcurrentSourceFetchCoalesced(t *testing.T) {
	ext := &slowExtents{gate: make(chan struct{})}
	sch := hdm.NewSchema("S")
	sch.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "", ""))
	p := New()
	if err := p.AddExtents("S", sch, ext); err != nil {
		t.Fatal(err)
	}
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<t>>]"), "test", "S")

	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := p.Extent([]string{"u"}); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	// Release the (single) in-flight fetch once everyone has had a
	// chance to pile up behind it.
	close(ext.gate)
	wg.Wait()
	if n := ext.fetches.Load(); n != 1 {
		t.Fatalf("source extent fetched %d times under concurrency, want 1", n)
	}
}

// TestSharedStepBudget verifies MaxSteps bounds the whole query, not
// each derivation separately: two derivations that fit individually
// must together exhaust the per-query budget.
func TestSharedStepBudget(t *testing.T) {
	p, _ := countingProcessor(t)
	// u has one derivation over t; add a second derivation so the
	// union evaluates two comprehensions.
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<w>>]"), "test", "S")

	// Find the whole-query step cost, then set the budget between the
	// halves and the total: per-derivation budgeting would pass, a
	// shared budget must fail.
	b := &iql.StepBudget{}
	s := p.newSession(nil)
	s.budget = b
	ev := &iql.Evaluator{Ext: s, Budget: b}
	if _, err := ev.Eval(iql.MustParse("count(<<u>>)"), nil); err != nil {
		t.Fatal(err)
	}
	total := b.Used()
	if total < 4 {
		t.Fatalf("unexpectedly cheap query: %d steps", total)
	}

	p.InvalidateCache()
	p.MaxSteps = total - 1
	if _, err := p.Eval(iql.MustParse("count(<<u>>)")); err == nil {
		t.Fatalf("query within per-derivation budgets but beyond the shared %d-step budget succeeded", total-1)
	} else if !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("unexpected error: %v", err)
	}

	p.InvalidateCache()
	p.MaxSteps = total
	if _, err := p.Eval(iql.MustParse("count(<<u>>)")); err != nil {
		t.Fatalf("query at exactly the budget failed: %v", err)
	}
}
