package query

import (
	"fmt"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// Explain renders the derivation tree of a virtual object: every
// registered derivation with its provenance pathway and scope, and
// recursively the derivations of the virtual objects each query
// references. This is the programmatic analogue of AutoMed's Extent
// Tool, which the paper's workflow uses to verify integrations (step 6).
func (p *Processor) Explain(sc hdm.Scheme) string {
	var b strings.Builder
	seen := make(map[string]bool)
	p.explain(&b, sc.Parts(), 0, seen)
	return b.String()
}

func (p *Processor) explain(b *strings.Builder, parts []string, depth int, seen map[string]bool) {
	indent := strings.Repeat("  ", depth)
	key := strings.Join(parts, "|")
	ref := "<<" + strings.Join(parts, ", ") + ">>"

	p.mu.Lock()
	derivs := append([]Derivation(nil), p.defs[key]...)
	p.mu.Unlock()

	if len(derivs) == 0 {
		// Source-resident or unknown.
		p.mu.Lock()
		srcs := append([]source(nil), p.sources...)
		p.mu.Unlock()
		for _, s := range srcs {
			if obj, err := s.schema.Resolve(parts); err == nil {
				fmt.Fprintf(b, "%s%s: source object %s in %s\n", indent, ref, obj.Scheme, s.name)
				return
			}
		}
		fmt.Fprintf(b, "%s%s: UNKNOWN\n", indent, ref)
		return
	}
	if seen[key] {
		fmt.Fprintf(b, "%s%s: (see above)\n", indent, ref)
		return
	}
	seen[key] = true
	fmt.Fprintf(b, "%s%s: %d derivation(s)\n", indent, ref, len(derivs))
	for i, d := range derivs {
		kind := "add"
		if d.Lower {
			kind = "extend (lower bound)"
		}
		scope := d.Scope
		if scope == "" {
			scope = "unscoped"
		}
		fmt.Fprintf(b, "%s  [%d] %s via %s, scope %s:\n%s      %s\n",
			indent, i+1, kind, d.Via, scope, indent, d.Query)
		// Recurse into virtual references of this derivation, resolved
		// in its scope: scope-resident names are source objects there.
		for _, rp := range uniqueRefs(d) {
			rkey := strings.Join(rp, "|")
			if d.Scope != "" {
				if _, _, ok := p.resolveIn(d.Scope, rp); ok {
					continue // source object in scope; leaf
				}
			}
			p.mu.Lock()
			_, virtual := p.defs[rkey]
			p.mu.Unlock()
			if virtual {
				p.explain(b, rp, depth+2, seen)
			}
		}
	}
}

func uniqueRefs(d Derivation) [][]string {
	return iql.UniqueSchemeRefs(d.Query)
}
