package query

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/transform"
	"github.com/dataspace/automed/internal/wrapper"
)

func staticSource(t *testing.T, name string, extents map[string]iql.Value) *wrapper.Static {
	t.Helper()
	w := wrapper.NewStatic(name)
	for scheme, v := range extents {
		kind := hdm.Nodal
		sc := hdm.MustScheme(scheme)
		if sc.Arity() > 1 {
			kind = hdm.Link
		}
		if err := w.Add(sc, kind, "", "", v); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestSourceExtentAndSuffix(t *testing.T) {
	p := New()
	src := staticSource(t, "S", map[string]iql.Value{
		"<<sql, table, protein>>": iql.Bag(iql.Int(1), iql.Int(2)),
	})
	if err := p.AddSource(src); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource(src); err == nil {
		t.Error("duplicate source accepted")
	}
	v, err := p.Extent([]string{"protein"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("extent = %s", v)
	}
	if _, err := p.Extent([]string{"nope"}); err == nil {
		t.Error("unknown object resolved")
	}
}

func TestAmbiguousAcrossSources(t *testing.T) {
	p := New()
	p.AddSource(staticSource(t, "A", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(1))}))
	p.AddSource(staticSource(t, "B", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(2))}))
	if _, err := p.Extent([]string{"t"}); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguity not detected: %v", err)
	}
	// Scoped resolution disambiguates.
	v, err := p.ScopedExtent("B", []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Int(2))) {
		t.Errorf("scoped extent = %s", v)
	}
}

func TestScopedDerivations(t *testing.T) {
	// Two sources with same-named objects; the virtual object unions
	// per-scope derivations, mirroring the paper's per-pathway query
	// contexts.
	p := New()
	p.AddSource(staticSource(t, "A", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(1))}))
	p.AddSource(staticSource(t, "B", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(2), iql.Int(3))}))
	p.Define(hdm.MustScheme("<<U>>"), iql.MustParse("[{'A', k} | k <- <<t>>]"), "test", "A")
	p.Define(hdm.MustScheme("<<U>>"), iql.MustParse("[{'B', k} | k <- <<t>>]"), "test", "B")
	v, err := p.Extent([]string{"U"})
	if err != nil {
		t.Fatal(err)
	}
	want := iql.Bag(
		iql.Tuple(iql.Str("A"), iql.Int(1)),
		iql.Tuple(iql.Str("B"), iql.Int(2)),
		iql.Tuple(iql.Str("B"), iql.Int(3)),
	)
	if !v.Equal(want) {
		t.Errorf("U = %s, want %s", v, want)
	}
}

func TestRegisterPathwayKinds(t *testing.T) {
	p := New()
	p.AddSource(staticSource(t, "S", map[string]iql.Value{
		"<<t>>": iql.Bag(iql.Int(1), iql.Int(2)),
	}))
	pw := transform.NewPathway("S", "G",
		transform.NewAdd(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<t>>; k > 1]"), hdm.Nodal, "", ""),
		transform.NewRename(hdm.MustScheme("<<u>>"), hdm.MustScheme("<<v>>")),
		transform.NewExtend(hdm.MustScheme("<<w>>"),
			iql.MustParse("[9]"), &iql.Lit{Val: iql.Any()}, hdm.Nodal, "", ""),
	)
	if err := p.RegisterPathway(pw, "S"); err != nil {
		t.Fatal(err)
	}
	// add: derived extent.
	v, _ := p.Extent([]string{"u"})
	if !v.Equal(iql.Bag(iql.Int(2))) {
		t.Errorf("u = %s", v)
	}
	// rename: v defined by u.
	v, _ = p.Extent([]string{"v"})
	if !v.Equal(iql.Bag(iql.Int(2))) {
		t.Errorf("v = %s", v)
	}
	// extend: lower bound with warning.
	v, err := p.Extent([]string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Int(9))) {
		t.Errorf("w = %s", v)
	}
	if len(p.Warnings()) == 0 {
		t.Error("no incompleteness warning for extend")
	}
	p.ClearWarnings()
	if len(p.Warnings()) != 0 {
		t.Error("ClearWarnings failed")
	}
}

func TestIdentChainUnionsExactlyOnce(t *testing.T) {
	// US1 ~ US2 ~ US3 ident chain: querying any of them yields the bag
	// union of all three derivations exactly once (cycle cut).
	p := New()
	p.AddSource(staticSource(t, "S1", map[string]iql.Value{"<<a>>": iql.Bag(iql.Int(1))}))
	p.AddSource(staticSource(t, "S2", map[string]iql.Value{"<<b>>": iql.Bag(iql.Int(2))}))
	p.AddSource(staticSource(t, "S3", map[string]iql.Value{"<<c>>": iql.Bag(iql.Int(3))}))
	p.Define(hdm.MustScheme("<<us1, x>>"), iql.MustParse("<<a>>"), "t", "S1")
	p.Define(hdm.MustScheme("<<us2, x>>"), iql.MustParse("<<b>>"), "t", "S2")
	p.Define(hdm.MustScheme("<<us3, x>>"), iql.MustParse("<<c>>"), "t", "S3")
	ident12 := transform.NewPathway("US1", "US2",
		transform.NewID(hdm.MustScheme("<<us1, x>>"), hdm.MustScheme("<<us2, x>>")))
	ident23 := transform.NewPathway("US2", "US3",
		transform.NewID(hdm.MustScheme("<<us2, x>>"), hdm.MustScheme("<<us3, x>>")))
	if err := p.RegisterPathway(ident12, ""); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterPathway(ident23, ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"us1, x", "us2, x", "us3, x"} {
		v, err := p.Extent(strings.Split(name, ", "))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(iql.Bag(iql.Int(1), iql.Int(2), iql.Int(3))) {
			t.Errorf("<<%s>> = %s, want [1, 2, 3]", name, v)
		}
	}
}

func TestSelfIDRegistersNothing(t *testing.T) {
	p := New()
	pw := transform.NewPathway("A", "B",
		transform.NewID(hdm.MustScheme("<<x>>"), hdm.MustScheme("<<x>>")))
	if err := p.RegisterPathway(pw, ""); err != nil {
		t.Fatal(err)
	}
	if len(p.DefinedObjects()) != 0 {
		t.Errorf("self-id created definitions: %v", p.DefinedObjects())
	}
}

func TestRecursiveUnfoldingThroughLayers(t *testing.T) {
	// G defined over I defined over source: two levels of unfolding.
	p := New()
	p.AddSource(staticSource(t, "S", map[string]iql.Value{
		"<<t, c>>": iql.Bag(
			iql.Tuple(iql.Int(1), iql.Str("x")),
			iql.Tuple(iql.Int(2), iql.Str("y")),
		),
	}))
	p.Define(hdm.MustScheme("<<I, c>>"), iql.MustParse("[{'S', k, v} | {k, v} <- <<t, c>>]"), "t", "S")
	p.Define(hdm.MustScheme("<<G>>"), iql.MustParse("[v | {s, k, v} <- <<I, c>>]"), "t", "")
	v, err := p.Extent([]string{"G"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Str("x"), iql.Str("y"))) {
		t.Errorf("G = %s", v)
	}
}

func TestCacheInvalidation(t *testing.T) {
	p := New()
	calls := 0
	sch := hdm.NewSchema("S")
	sch.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "", ""))
	p.AddExtents("S", sch, iql.ExtentsFunc(func(parts []string) (iql.Value, error) {
		calls++
		return iql.Bag(iql.Int(int64(calls))), nil
	}))
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("<<t>>"), "t", "S")
	p.Extent([]string{"u"})
	p.Extent([]string{"u"})
	if calls != 1 {
		t.Errorf("extent fetched %d times, want 1 (cached)", calls)
	}
	p.InvalidateCache()
	p.Extent([]string{"u"})
	if calls != 2 {
		t.Errorf("cache not invalidated: %d calls", calls)
	}
}

func TestEvalAndQuery(t *testing.T) {
	p := New()
	p.AddSource(staticSource(t, "S", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(1), iql.Int(2))}))
	v, err := p.Query("count(<<t>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Int(2)) {
		t.Errorf("Query = %s", v)
	}
	if _, err := p.Query("[bad"); err == nil {
		t.Error("bad IQL accepted")
	}
	v, err = p.EvalScoped(iql.MustParse("count(<<t>>)"), "S")
	if err != nil || !v.Equal(iql.Int(2)) {
		t.Errorf("EvalScoped = %s %v", v, err)
	}
}

func TestMaterialize(t *testing.T) {
	p := New()
	p.AddSource(staticSource(t, "S", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(1))}))
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("<<t>>"), "t", "S")
	g := hdm.NewSchema("G")
	g.MustAdd(hdm.NewObject(hdm.MustScheme("<<u>>"), hdm.Nodal, "", ""))
	m, err := p.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if !m["u"].Equal(iql.Bag(iql.Int(1))) {
		t.Errorf("materialized = %v", m)
	}
	bad := hdm.NewSchema("B")
	bad.MustAdd(hdm.NewObject(hdm.MustScheme("<<missing>>"), hdm.Nodal, "", ""))
	if _, err := p.Materialize(bad); err == nil {
		t.Error("materializing unknown object succeeded")
	}
}

func TestUnfoldSyntactic(t *testing.T) {
	p := New()
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<t>>]"), "t", "")
	p.Define(hdm.MustScheme("<<v>>"), iql.MustParse("[k | k <- <<u>>; k > 1]"), "t", "")
	e, err := p.Unfold(iql.MustParse("count(<<v>>)"), 10)
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	if strings.Contains(s, "<<v>>") || strings.Contains(s, "<<u>>") {
		t.Errorf("unfolding incomplete: %s", s)
	}
	if !strings.Contains(s, "<<t>>") {
		t.Errorf("source reference lost: %s", s)
	}
	// Cyclic definitions are reported.
	p2 := New()
	p2.Define(hdm.MustScheme("<<a>>"), iql.MustParse("<<b>>"), "t", "")
	p2.Define(hdm.MustScheme("<<b>>"), iql.MustParse("<<a>>"), "t", "")
	if _, err := p2.Unfold(iql.MustParse("<<a>>"), 5); err == nil {
		t.Error("cyclic unfolding not detected")
	}
}

func TestDerivationsAndDefinedObjects(t *testing.T) {
	p := New()
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("<<t>>"), "via1", "S")
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("<<t2>>"), "via2", "S2")
	ds := p.Derivations(hdm.MustScheme("<<u>>"))
	if len(ds) != 2 || ds[0].Via != "via1" || ds[1].Scope != "S2" {
		t.Errorf("Derivations = %+v", ds)
	}
	if !p.HasDefinition(hdm.MustScheme("<<u>>")) || p.HasDefinition(hdm.MustScheme("<<z>>")) {
		t.Error("HasDefinition wrong")
	}
	if got := p.DefinedObjects(); len(got) != 1 || got[0] != "u" {
		t.Errorf("DefinedObjects = %v", got)
	}
}

func TestDerivationErrorPropagates(t *testing.T) {
	p := New()
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<missing>>]"), "t", "")
	if _, err := p.Extent([]string{"u"}); err == nil {
		t.Error("dangling derivation evaluated")
	}
	// Non-collection derivation.
	p.Define(hdm.MustScheme("<<w>>"), iql.MustParse("42"), "t", "")
	if _, err := p.Extent([]string{"w"}); err == nil {
		t.Error("scalar derivation accepted as extent")
	}
}

func TestConcurrentQueries(t *testing.T) {
	p := New()
	p.AddSource(staticSource(t, "S", map[string]iql.Value{"<<t>>": iql.Bag(iql.Int(1), iql.Int(2))}))
	p.Define(hdm.MustScheme("<<u>>"), iql.MustParse("[k | k <- <<t>>]"), "t", "S")
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			v, err := p.Query("count(<<u>>)")
			if err == nil && !v.Equal(iql.Int(2)) {
				err = &mismatchError{}
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "wrong count" }
