// Package query implements AutoMed's query processor for the BAV
// setting: users' IQL queries expressed on an integrated (virtual)
// schema are answered by recursively unfolding the view definitions
// carried by the add/extend steps of the pathways from the data source
// schemas (GAV unfolding); the reverse direction — answering source
// queries from an integrated resource — falls out of the automatic
// reversibility of pathways (LAV), per paper §2.1.
//
// An object added by several pathways (one per data source) has as its
// extent the bag union of all of its derivations, which is AutoMed's
// default semantics for integrated objects and the one the paper
// assumes. Extends contribute their lower bound and flag the answer as
// potentially incomplete.
//
// Derivations are *scoped*: a derivation registered from the pathway
// ES_i → I evaluates its unqualified scheme references against the
// schema of data source ES_i first, exactly as the paper's
// transformations are written (e.g. <<protein>> inside Pedro's pathway
// means Pedro's protein table even though PepSeeker also has one).
//
// Both extent caches — the virtual-extent memo and the source-extent
// cache — are dependency-tagged cache.Stores: every memoised extent
// records the transitive set of scheme keys its computation touched, so
// that registering new derivations (an integration iteration) evicts
// exactly the affected entries via InvalidateSchemes instead of purging
// all cached work.
package query

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dataspace/automed/internal/cache"
	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/transform"
)

// Derivation is one definition of a virtual object's extent.
type Derivation struct {
	// Query computes (part of) the extent; for extends this is the
	// Range whose lower bound is used.
	Query iql.Expr
	// Lower marks a lower-bound-only derivation (from an extend step):
	// answers through it are certain but possibly incomplete.
	Lower bool
	// Via records the pathway that introduced the derivation, for
	// provenance reporting.
	Via string
	// Scope names the data source schema whose objects unqualified
	// references resolve against first; empty means unscoped.
	Scope string
}

// source is one registered extent provider. extCtx is the provider's
// context-aware fetch path, nil when it offers none; kind labels the
// provider's wrapper flavour in metrics and traces.
type source struct {
	name   string
	schema *hdm.Schema
	ext    iql.Extents
	extCtx ContextSourcer
	// fb is the provider's stale-fallback path (snapshot extents held
	// for offline use), nil when it offers none.
	fb   FallbackSourcer
	kind string
	// scan is the provider's pull-based row-scanner path, nil when it
	// offers none; streams reports whether its scans actually page from
	// the backend (a materialised-scan adapter sets scan but not
	// streams, and the pipeline never streams it).
	scan    ScanSourcer
	streams bool
}

// fetch retrieves one extent, routing through the provider's
// context-aware path when it has one so remote backends observe
// request cancellation; providers without one are called plainly.
// Context-carried instrumentation (a trace span and the per-source
// metrics registry) records the fetch; uninstrumented contexts cost a
// few nil checks.
func (src source) fetch(ctx context.Context, sc hdm.Scheme) (iql.Value, error) {
	if ctx == nil {
		return src.ext.Extent(sc.Parts())
	}
	sp, fctx := obs.StartSpan(ctx, obs.StageFetch, src.name)
	sp.SetDetail(sc.Key())
	sp.SetCache(obs.CacheMiss)
	fctx, fs := obs.BeginFetch(fctx)
	start := time.Now()
	var v iql.Value
	var err error
	if src.extCtx != nil {
		v, err = src.extCtx.ExtentContext(fctx, sc.Parts())
	} else {
		v, err = src.ext.Extent(sc.Parts())
	}
	elapsed := time.Since(start)
	var rows int64
	if err == nil && v.Kind == iql.KindBag {
		rows = int64(len(v.Items))
	}
	bytes := fs.Bytes()
	if bytes == 0 && err == nil {
		bytes = v.Footprint()
	}
	sp.SetRows(rows)
	sp.SetBytes(bytes)
	sp.SetRetries(fs.Retries())
	sp.End(err)
	obs.SourcesFrom(ctx).Observe(src.name, src.kind, elapsed, rows, bytes, fs.Retries(), err)
	return v, err
}

// cachedExtent memoises a virtual object's extent together with the
// incompleteness warnings its computation raised (cache hits replay the
// warnings instead of silently reporting an incomplete answer as
// complete) and the transitive set of scheme keys the computation
// touched (its dependency set, which cache hits replay into the current
// session so enclosing computations inherit it).
type cachedExtent struct {
	val   iql.Value
	warns []string
	deps  []string
}

// cost estimates the entry's in-memory size for the byte budget.
func (ce cachedExtent) cost() int64 {
	n := ce.val.Footprint()
	for _, w := range ce.warns {
		n += int64(len(w)) + 16
	}
	for _, d := range ce.deps {
		n += int64(len(d)) + 16
	}
	return n
}

// Processor answers IQL queries over virtual schemas backed by data
// source wrappers. It is safe for concurrent use.
type Processor struct {
	mu      sync.Mutex
	sources []source
	defs    map[string][]Derivation
	memo    *cache.Store[cachedExtent]
	srcExt  *cache.Store[iql.Value]
	// joinIdx caches built hash-join indexes across every evaluator the
	// processor spawns, keyed by extent identity (see iql.JoinIndexCache):
	// a large memoised extent joined by many queries is indexed once per
	// extent version.
	joinIdx  *iql.JoinIndexCache
	warnings map[string]bool
	// MaxSteps bounds IQL evaluation per query; 0 means unlimited. The
	// budget is shared across every derivation a query unfolds, not per
	// derivation.
	MaxSteps int
	// Parallel sets the worker count for data-parallel comprehension
	// evaluation: 0 picks GOMAXPROCS, 1 forces serial evaluation, and
	// larger values set the pool width explicitly. Sharded evaluation
	// is byte-identical to serial, so this is purely a performance
	// knob.
	Parallel int
	// PrefetchWorkers and PrefetchMaxTasks override the concurrent
	// extent prefetcher's pool width and per-query task budget; 0
	// keeps the defaults (see prefetch.go).
	PrefetchWorkers  int
	PrefetchMaxTasks int
	// ScanBuffer sets the streaming pipeline's row window (see
	// stream.go): extents at or below it materialise and cache as
	// before, larger ones stream through a bounded prefetch buffer of
	// this many rows. 0 picks DefaultScanBufferRows; negative disables
	// streaming so every extent materialises.
	ScanBuffer int

	// brCfg and breakers implement the per-source circuit breakers (see
	// breaker.go); both are guarded by mu. Breakers are created lazily
	// per source name on first fetch, so sources registered after
	// SetBreaker are covered too.
	brCfg    BreakerConfig
	breakers map[string]*breaker
	// lastGood retains the most recent successful fetch of every source
	// extent for stale-extent fallback, keyed like srcExt entries. It is
	// deliberately separate from srcExt: cache invalidation must evict
	// cached extents (so queries refetch), but must not destroy the
	// fallback copy a broken source will be served from.
	lgMu     sync.Mutex
	lastGood map[string]lastGoodEntry

	statParallelEvals atomic.Uint64
	statSerialEvals   atomic.Uint64
	statShards        atomic.Uint64
}

// evalParallel resolves the effective sharded-evaluation width.
func (p *Processor) evalParallel() int {
	if p.Parallel > 0 {
		return p.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelStats snapshots the processor's sharded-evaluation counters.
type ParallelStats struct {
	// ParallelEvals and SerialEvals split completed top-level
	// evaluations by whether any generator scan sharded.
	ParallelEvals uint64
	SerialEvals   uint64
	// Shards is the total number of shards executed.
	Shards uint64
	// Width is the effective worker-pool width for new evaluations.
	Width int
}

// ParallelStats reports sharded-evaluation activity since startup.
func (p *Processor) ParallelStats() ParallelStats {
	return ParallelStats{
		ParallelEvals: p.statParallelEvals.Load(),
		SerialEvals:   p.statSerialEvals.Load(),
		Shards:        p.statShards.Load(),
		Width:         p.evalParallel(),
	}
}

// noteEval folds one finished evaluation's sharding telemetry into the
// processor counters and, when a span is recording, its detail field.
func (p *Processor) noteEval(st *iql.EvalStats, sp *obs.Span) {
	sh := st.Sharded()
	if len(sh) == 0 {
		p.statSerialEvals.Add(1)
		return
	}
	p.statParallelEvals.Add(1)
	shards, workers := 0, 0
	var slowest time.Duration
	for _, s := range sh {
		shards += s.Shards
		if s.Workers > workers {
			workers = s.Workers
		}
		if s.ShardMax > slowest {
			slowest = s.ShardMax
		}
	}
	p.statShards.Add(uint64(shards))
	if sp != nil {
		sp.SetDetail(fmt.Sprintf("sharded scans=%d shards=%d workers=%d shard_max=%s",
			len(sh), shards, workers, slowest.Round(time.Microsecond)))
	}
}

// New returns an empty processor. Its extent caches are unbounded until
// SetCacheBytes installs a byte budget.
func New() *Processor {
	return &Processor{
		defs:     make(map[string][]Derivation),
		memo:     cache.New[cachedExtent](cache.Options{}),
		srcExt:   cache.New[iql.Value](cache.Options{}),
		joinIdx:  iql.NewJoinIndexCache(0),
		warnings: make(map[string]bool),
		breakers: make(map[string]*breaker),
		lastGood: make(map[string]lastGoodEntry),
	}
}

// SetBreaker installs (or disables) the per-source circuit-breaker and
// stale-fallback configuration. Existing breakers are dropped so the
// new thresholds apply uniformly.
func (p *Processor) SetBreaker(cfg BreakerConfig) {
	if cfg.Enabled {
		cfg = cfg.withDefaults()
	}
	p.mu.Lock()
	p.brCfg = cfg
	p.breakers = make(map[string]*breaker)
	p.mu.Unlock()
}

// breakerFor returns the source's breaker, creating it on first use;
// nil when the breaker layer is disabled.
func (p *Processor) breakerFor(name string) *breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.brCfg.Enabled {
		return nil
	}
	b := p.breakers[name]
	if b == nil {
		b = newBreaker(p.brCfg)
		p.breakers[name] = b
	}
	return b
}

// lastGoodEntry is one retained last-known-good source extent.
type lastGoodEntry struct {
	val iql.Value
	at  time.Time
}

// noteGood retains a successful fetch for stale-extent fallback.
func (p *Processor) noteGood(ck string, v iql.Value) {
	p.lgMu.Lock()
	p.lastGood[ck] = lastGoodEntry{val: v, at: time.Now()}
	p.lgMu.Unlock()
}

// SourceHealth reports every registered source's breaker state, in
// registration order. Sources never fetched report closed breakers.
func (p *Processor) SourceHealth() []SourceHealth {
	p.mu.Lock()
	if !p.brCfg.Enabled {
		p.mu.Unlock()
		return nil
	}
	type sb struct {
		name, kind string
		b          *breaker
	}
	list := make([]sb, 0, len(p.sources))
	for _, s := range p.sources {
		list = append(list, sb{name: s.name, kind: s.kind, b: p.breakers[s.name]})
	}
	p.mu.Unlock()
	out := make([]SourceHealth, 0, len(list))
	for _, e := range list {
		h := SourceHealth{State: stateName(breakerClosed)}
		if e.b != nil {
			h = e.b.health()
		}
		h.Source, h.Kind = e.name, e.kind
		out = append(out, h)
	}
	return out
}

// ProbeOpen fetches one extent through every open (or stuck half-open)
// breaker whose probe interval has elapsed, letting recovered sources
// close their breakers without waiting for query traffic. It returns
// how many sources probed successfully. Healthy sources are not
// touched.
func (p *Processor) ProbeOpen(ctx context.Context) int {
	p.mu.Lock()
	type sb struct {
		src source
		b   *breaker
	}
	var due []sb
	if p.brCfg.Enabled {
		for _, s := range p.sources {
			if b := p.breakers[s.name]; b != nil {
				due = append(due, sb{src: s, b: b})
			}
		}
	}
	timeout := p.brCfg.SourceTimeout
	p.mu.Unlock()
	recovered := 0
	for _, e := range due {
		if !e.b.probeAllow() {
			continue
		}
		sc, ok := probeScheme(e.src.schema)
		if !ok {
			e.b.cancelProbe()
			continue
		}
		fctx, cancel := ctx, func() {}
		if timeout > 0 {
			fctx, cancel = context.WithTimeout(ctx, timeout)
		}
		v, err := e.src.fetch(fctx, sc)
		cancel()
		if err != nil && ctx.Err() != nil {
			// The probe run itself was cancelled; that says nothing
			// about the source.
			e.b.cancelProbe()
			return recovered
		}
		e.b.record(err == nil, err)
		if err == nil {
			p.noteGood(e.src.name+"\x00"+sc.Key(), v)
			// The source is back: evict everything computed while it was
			// down (memoised virtual extents carrying degraded warnings
			// depend on the source's scheme keys), so the next queries
			// recompute over fresh data.
			keys := make([]string, 0, e.src.schema.Len())
			for _, o := range e.src.schema.Objects() {
				keys = append(keys, o.Scheme.Key())
			}
			p.InvalidateSchemes(keys...)
			recovered++
		}
	}
	return recovered
}

// probeScheme picks a deterministic probe object from a source schema:
// its first object in scheme-key order.
func probeScheme(sch *hdm.Schema) (hdm.Scheme, bool) {
	var best hdm.Scheme
	found := false
	for _, o := range sch.Objects() {
		if !found || o.Scheme.Key() < best.Key() {
			best, found = o.Scheme, true
		}
	}
	return best, found
}

// SetCacheBytes bounds each extent cache layer (the virtual-extent
// memo, the source-extent cache, and the join-index cache — whose
// entries retain the extents they index) to budget bytes, evicting
// entries beyond it; budget <= 0 removes the bound.
func (p *Processor) SetCacheBytes(budget int64) {
	p.memo.SetMaxBytes(budget)
	p.srcExt.SetMaxBytes(budget)
	p.joinIdx.SetMaxBytes(budget)
}

// CacheStats snapshots the two extent cache layers: the virtual-extent
// memo and the source-extent cache.
func (p *Processor) CacheStats() (memo, src cache.Stats) {
	return p.memo.Stats(), p.srcExt.Stats()
}

// Sourcer is the subset of wrapper behaviour the processor needs; it is
// satisfied by wrapper implementations. Extent must tolerate concurrent
// calls: the processor prefetches the extents a query enumerates in
// parallel (misses of the same object are still coalesced to a single
// fetch by the source-extent cache).
type Sourcer interface {
	SchemaName() string
	Schema() *hdm.Schema
	Extent(parts []string) (iql.Value, error)
}

// ContextSourcer is the optional context-aware extension of an extent
// provider: wrappers over remote backends (SQL over the wire, REST
// endpoints) implement it so per-request timeouts and cancellation
// propagate into the wire fetch instead of being checked only between
// evaluation steps.
type ContextSourcer interface {
	ExtentContext(ctx context.Context, parts []string) (iql.Value, error)
}

// AddSource registers a data source. Source schema objects are
// authoritative: references resolving in exactly one source schema are
// answered by that source. Sources additionally implementing
// ContextSourcer get request contexts threaded into their fetches.
func (p *Processor) AddSource(w Sourcer) error {
	if w == nil {
		return fmt.Errorf("query: nil source")
	}
	return p.AddExtents(w.SchemaName(), w.Schema(), w)
}

// AddExtents registers a generic extent provider with an explicit
// schema, e.g. a materialised global schema used to answer source
// queries in the reverse (LAV) direction.
func (p *Processor) AddExtents(name string, schema *hdm.Schema, ext iql.Extents) error {
	if name == "" || schema == nil || ext == nil {
		return fmt.Errorf("query: invalid extent source")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sources {
		if s.name == name {
			return fmt.Errorf("query: source %q already registered", name)
		}
	}
	src := source{name: name, schema: schema, ext: ext, kind: "local"}
	if cs, ok := ext.(ContextSourcer); ok {
		src.extCtx = cs
	}
	if fb, ok := ext.(FallbackSourcer); ok {
		src.fb = fb
	}
	if k, ok := ext.(interface{ Kind() string }); ok {
		src.kind = k.Kind()
	}
	if sc, ok := ext.(ScanSourcer); ok {
		src.scan = sc
		if st, ok := ext.(interface{ StreamingScans() bool }); ok {
			src.streams = st.StreamingScans()
		}
	}
	p.sources = append(p.sources, src)
	return nil
}

// SourceNames returns registered source names in registration order.
func (p *Processor) SourceNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.sources))
	for i, s := range p.sources {
		out[i] = s.name
	}
	return out
}

// RegisterPathway installs the view definitions induced by a pathway's
// steps, all scoped to the given source schema name: add(o,q) defines o
// by q; extend(o, Range lo hi) defines a lower bound for o; rename(o,n)
// defines n by o; id(a,b) defines each of a, b by the other (cycles are
// cut during evaluation, yielding the union across an ident chain
// exactly once; self-ids register nothing). delete and contract steps
// induce no forward definitions. Cached extents depending on the newly
// defined objects are selectively invalidated; unrelated entries stay
// live.
func (p *Processor) RegisterPathway(pw *transform.Pathway, scope string) error {
	if pw == nil {
		return fmt.Errorf("query: nil pathway")
	}
	p.mu.Lock()
	via := pw.Source + "->" + pw.Target
	var defined []string
	for _, t := range pw.Steps {
		switch t.Kind {
		case transform.Add:
			p.defs[t.Object.Key()] = append(p.defs[t.Object.Key()],
				Derivation{Query: t.Query, Via: via, Scope: scope})
			defined = append(defined, t.Object.Key())
		case transform.Extend:
			p.defs[t.Object.Key()] = append(p.defs[t.Object.Key()],
				Derivation{Query: t.Query, Lower: true, Via: via, Scope: scope})
			defined = append(defined, t.Object.Key())
		case transform.Rename:
			p.defs[t.To.Key()] = append(p.defs[t.To.Key()],
				Derivation{Query: iql.Ref(t.Object.Parts()...), Via: via, Scope: scope})
			defined = append(defined, t.To.Key())
		case transform.ID:
			if t.Object.Key() == t.To.Key() {
				continue // self-id: no definitional content in one namespace
			}
			p.defs[t.Object.Key()] = append(p.defs[t.Object.Key()],
				Derivation{Query: iql.Ref(t.To.Parts()...), Via: via, Scope: scope})
			p.defs[t.To.Key()] = append(p.defs[t.To.Key()],
				Derivation{Query: iql.Ref(t.Object.Parts()...), Via: via, Scope: scope})
			defined = append(defined, t.Object.Key(), t.To.Key())
		case transform.Delete, transform.Contract:
			// No forward definition.
		}
	}
	p.mu.Unlock()
	p.InvalidateSchemes(defined...)
	return nil
}

// Define installs a single ad-hoc derivation for a virtual object,
// selectively invalidating cached extents that depend on it.
func (p *Processor) Define(sc hdm.Scheme, q iql.Expr, via, scope string) {
	p.mu.Lock()
	p.defs[sc.Key()] = append(p.defs[sc.Key()], Derivation{Query: q, Via: via, Scope: scope})
	p.mu.Unlock()
	p.InvalidateSchemes(sc.Key())
}

// ObjectDef is one derivation in a DefineAll batch.
type ObjectDef struct {
	Scheme hdm.Scheme
	Query  iql.Expr
	Via    string
	Scope  string
}

// DefineAll installs a batch of ad-hoc derivations under a single lock
// acquisition and one selective invalidation pass. Registering n
// objects through Define costs n invalidation sweeps (each of which
// also purges the join-index cache); a federation-sized batch through
// DefineAll costs one.
func (p *Processor) DefineAll(defs []ObjectDef) {
	if len(defs) == 0 {
		return
	}
	keys := make([]string, 0, len(defs))
	p.mu.Lock()
	for _, d := range defs {
		k := d.Scheme.Key()
		p.defs[k] = append(p.defs[k], Derivation{Query: d.Query, Via: d.Via, Scope: d.Scope})
		keys = append(keys, k)
	}
	p.mu.Unlock()
	p.InvalidateSchemes(keys...)
}

// Derivations returns the registered derivations for an object (for
// provenance display).
func (p *Processor) Derivations(sc hdm.Scheme) []Derivation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Derivation(nil), p.defs[sc.Key()]...)
}

// HasDefinition reports whether the object has at least one derivation.
func (p *Processor) HasDefinition(sc hdm.Scheme) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.defs[sc.Key()]) > 0
}

// DefineDerivation installs a fully-specified derivation, preserving
// its Lower/Via/Scope metadata. It is the restore-side counterpart of
// AllDerivations, used when rebuilding a processor from a snapshot.
func (p *Processor) DefineDerivation(sc hdm.Scheme, d Derivation) {
	p.mu.Lock()
	p.defs[sc.Key()] = append(p.defs[sc.Key()], d)
	p.mu.Unlock()
	p.InvalidateSchemes(sc.Key())
}

// ObjectDerivations pairs a virtual object's scheme key with its
// derivations in registration order.
type ObjectDerivations struct {
	Key    string
	Derivs []Derivation
}

// AllDerivations returns every registered derivation: keys sorted for
// deterministic snapshots, derivations within a key in registration
// order (the order extents accumulate in during unfolding).
func (p *Processor) AllDerivations() []ObjectDerivations {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.defs))
	for k := range p.defs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ObjectDerivations, 0, len(keys))
	for _, k := range keys {
		out = append(out, ObjectDerivations{Key: k, Derivs: append([]Derivation(nil), p.defs[k]...)})
	}
	return out
}

// DefinedObjects returns the scheme keys of all virtual objects, sorted.
func (p *Processor) DefinedObjects() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.defs))
	for k := range p.defs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// InvalidateCache clears every memoised extent wholesale. It remains
// for source-data changes of unknown extent; integration iterations use
// the selective InvalidateSchemes instead.
func (p *Processor) InvalidateCache() {
	p.memo.Purge()
	p.srcExt.Purge()
	// Stale join indexes are harmless (they are keyed by retained extent
	// identity), but a full purge is the moment to drop their memory.
	p.joinIdx.Purge()
}

// InvalidateSchemes evicts exactly the cached extents whose dependency
// set intersects keys — each memoised extent knows the transitive set
// of source and virtual scheme keys its computation touched — and
// returns how many entries were dropped. Unrelated cached extents
// survive, which is what keeps warm answers live across integration
// iterations.
func (p *Processor) InvalidateSchemes(keys ...string) int {
	if len(keys) == 0 {
		return 0
	}
	dropped := p.memo.InvalidateDeps(keys...) + p.srcExt.InvalidateDeps(keys...)
	// Join indexes retain the extent arrays they were built over, so an
	// iteration must not leave indexes of retired extent versions
	// pinned. The cache has no per-scheme dependency tracking; purging
	// it wholesale is cheap because indexes rebuild on demand from the
	// (still warm) surviving extents.
	p.joinIdx.Purge()
	return dropped
}

// Warnings returns accumulated incompleteness warnings, sorted.
func (p *Processor) Warnings() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.warnings))
	for w := range p.warnings {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// ClearWarnings discards accumulated warnings.
func (p *Processor) ClearWarnings() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.warnings = make(map[string]bool)
}

// warnIn records a warning in the session (per-evaluation reporting,
// race-free under concurrent queries; the ordered log also feeds the
// extent memo cache) and in the processor's accumulated set (the
// legacy Warnings API).
func (p *Processor) warnIn(s *session, msg string) {
	if s.warnings != nil {
		s.warnings[msg] = true
	}
	s.warnLog = append(s.warnLog, msg)
	p.mu.Lock()
	p.warnings[msg] = true
	p.mu.Unlock()
}

// session threads the recursion stack and scope stack through one query
// evaluation so that ident cycles are cut exactly once, mid-cycle
// results are not memoised, and each derivation's references resolve in
// its own source scope.
type session struct {
	p       *Processor
	onStack map[string]bool
	scopes  []string
	cut     bool
	// ctx, when non-nil, cancels long evaluations (per-request
	// timeouts); it is handed to every evaluator the session spawns.
	ctx context.Context
	// budget is the evaluation step budget shared by every evaluator
	// this session spawns, so MaxSteps bounds the whole query rather
	// than each derivation separately.
	budget *iql.StepBudget
	// warnings, when non-nil, collects the incompleteness warnings
	// raised during this one evaluation.
	warnings map[string]bool
	// warnLog is the ordered warning stream of this evaluation; each
	// virtual extent caches the slice it contributed so that memo-
	// cache hits replay the warnings of the computation they reuse.
	warnLog []string
	// depLog is the ordered stream of scheme keys this evaluation
	// touched (source and virtual); each virtual extent caches the
	// slice it contributed as its dependency set, and memo-cache hits
	// replay the reused computation's dependencies, so the log is
	// always the transitive touch-set of the evaluation so far.
	depLog []string
	// stats collects sharding telemetry across every evaluator this
	// session spawns (it is concurrency-safe).
	stats *iql.EvalStats
}

// evaluator builds an IQL evaluator wired to this session: shared step
// budget, request context, the processor-wide join-index cache, and
// the sharded-evaluation settings. Sharded workers serialise their
// session access internally (see iql/parallel.go), so handing the
// session itself as the extent source stays correct under parallelism.
func (s *session) evaluator() *iql.Evaluator {
	return &iql.Evaluator{
		Ext:      s,
		Budget:   s.budget,
		Ctx:      s.ctx,
		Indexes:  s.p.joinIdx,
		Parallel: s.p.evalParallel(),
		Stats:    s.stats,
	}
}

// newSession builds an evaluation session with a fresh per-query step
// budget.
func (p *Processor) newSession(ctx context.Context, scopes ...string) *session {
	return &session{
		p:       p,
		onStack: make(map[string]bool),
		scopes:  scopes,
		ctx:     ctx,
		budget:  &iql.StepBudget{Max: p.MaxSteps},
		stats:   &iql.EvalStats{},
	}
}

func (s *session) scope() string {
	if len(s.scopes) == 0 {
		return ""
	}
	return s.scopes[len(s.scopes)-1]
}

// dep records a touched scheme key.
func (s *session) dep(key string) {
	s.depLog = append(s.depLog, key)
}

// deps returns the distinct scheme keys this session touched, sorted.
func (s *session) deps() []string {
	out := cache.Dedup(s.depLog)
	sort.Strings(out)
	return out
}

// Extent implements iql.Extents for evaluation within a session.
func (s *session) Extent(parts []string) (iql.Value, error) {
	return s.p.extentIn(s, parts)
}

// Extent returns the extent of the referenced object: virtual objects
// by unfolding their derivations (their source extents are prefetched
// concurrently first), source objects from their wrapper.
func (p *Processor) Extent(parts []string) (iql.Value, error) {
	p.prefetch(nil, iql.Ref(parts...), "")
	return p.extentIn(p.newSession(nil), parts)
}

// ScopedExtent resolves parts as if referenced from within the given
// source scope (used by tools displaying per-source extents).
func (p *Processor) ScopedExtent(scope string, parts []string) (iql.Value, error) {
	return p.extentIn(p.newSession(nil, scope), parts)
}

func (p *Processor) extentIn(s *session, parts []string) (iql.Value, error) {
	// 1. Current scope's source schema wins for unqualified references,
	// matching the paper's per-pathway query context.
	if sc := s.scope(); sc != "" {
		if src, obj, ok := p.resolveIn(sc, parts); ok {
			return p.sourceExtent(s, src, obj)
		}
	}

	// 2. Virtual objects (exact scheme key).
	key := strings.Join(parts, "|")
	p.mu.Lock()
	derivs, virtual := p.defs[key]
	p.mu.Unlock()
	if virtual {
		name := strings.Join(parts, ", ")
		if ce, ok := p.memo.Get(key); ok {
			// Replay the reused computation's warnings and dependency
			// set so the enclosing evaluation inherits both.
			for _, w := range ce.warns {
				p.warnIn(s, w)
			}
			s.depLog = append(s.depLog, ce.deps...)
			if sp, _ := obs.StartSpan(s.ctx, obs.StageExtent, name); sp != nil {
				sp.SetCache(obs.CacheHit)
				if ce.val.Kind == iql.KindBag {
					sp.SetRows(int64(len(ce.val.Items)))
				}
				sp.End(nil)
			}
			return ce.val, nil
		}
		// A memo miss spans the unfolding, so the fetch (and nested
		// extent) spans of the computation appear as its children.
		sp, ctx := obs.StartSpan(s.ctx, obs.StageExtent, name)
		if sp == nil {
			return p.virtualExtent(s, key, parts, derivs)
		}
		sp.SetCache(obs.CacheMiss)
		saved := s.ctx
		s.ctx = ctx
		v, err := p.virtualExtent(s, key, parts, derivs)
		s.ctx = saved
		if err == nil && v.Kind == iql.KindBag {
			sp.SetRows(int64(len(v.Items)))
		}
		sp.End(err)
		return v, err
	}

	// 3. Unambiguous global source resolution.
	hits := p.resolveGlobal(parts)
	switch len(hits) {
	case 0:
		return iql.Value{}, fmt.Errorf("query: unknown schema object <<%s>>", strings.Join(parts, ", "))
	case 1:
		// The reference key itself is a dependency: a later derivation
		// registered under it changes this resolution from source to
		// virtual, so dependents must be invalidated then.
		s.dep(key)
		return p.sourceExtent(s, hits[0].src, hits[0].sc)
	default:
		names := make([]string, len(hits))
		for i, h := range hits {
			names[i] = h.src.name
		}
		return iql.Value{}, fmt.Errorf("query: <<%s>> is ambiguous across sources %s",
			strings.Join(parts, ", "), strings.Join(names, ", "))
	}
}

// refHit is one source schema in which a reference resolves.
type refHit struct {
	src source
	sc  hdm.Scheme
}

// resolveGlobal resolves parts against every registered source schema,
// returning each hit. It is the shared global-resolution step of
// evaluation (extentIn) and prefetch: exactly one hit means the source
// is authoritative, several mean the reference is ambiguous.
func (p *Processor) resolveGlobal(parts []string) []refHit {
	// Copy the source list under the lock, resolve unlocked: Resolve
	// walks each schema, and holding p.mu across that would serialise
	// every concurrent query's reference resolution.
	p.mu.Lock()
	srcs := append([]source(nil), p.sources...)
	p.mu.Unlock()
	var hits []refHit
	for _, src := range srcs {
		obj, err := src.schema.Resolve(parts)
		if err != nil {
			continue
		}
		hits = append(hits, refHit{src: src, sc: obj.Scheme})
	}
	return hits
}

// resolveIn resolves parts against one named source schema.
func (p *Processor) resolveIn(name string, parts []string) (source, hdm.Scheme, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, src := range p.sources {
		if src.name != name {
			continue
		}
		obj, err := src.schema.Resolve(parts)
		if err != nil {
			return source{}, hdm.Scheme{}, false
		}
		return src, obj.Scheme, true
	}
	return source{}, hdm.Scheme{}, false
}

// sourceExtent fetches (or reuses) one source object's extent.
// Concurrent misses of the same object coalesce into a single wrapper
// fetch via the cache's singleflight GetOrCompute, and the session
// context rides into context-aware wrappers. Coalescing shares errors,
// so a fetch cancelled by its initiating request's deadline would fail
// every waiter; a waiter whose own context is still live retries once
// under it instead of inheriting a cancellation that was never its.
//
// When breakers are enabled, the fetch is additionally guarded by the
// source's circuit breaker (an open breaker short-circuits to the
// stale-fallback path without touching the source), bounded by the
// per-source deadline budget, and its outcome — only real wrapper
// calls, never cache hits — feeds the breaker. A failed fetch whose
// requesting context is still live degrades to the last-known-good
// extent instead of erroring.
func (p *Processor) sourceExtent(s *session, src source, sc hdm.Scheme) (iql.Value, error) {
	key := sc.Key()
	s.dep(key)
	ck := src.name + "\x00" + key
	br := p.breakerFor(src.name)
	if br != nil {
		if proceed, _ := br.allow(); !proceed {
			// Breaker open: the source gets no traffic at all.
			if sp, _ := obs.StartSpan(s.ctx, obs.StageBreaker, src.name); sp != nil {
				sp.SetDetail(key)
				sp.End(nil)
			}
			return p.staleExtent(s, src, sc, ck, "breaker open: "+br.lastError())
		}
	}
	fetched := false
	compute := func() (iql.Value, int64, error) {
		fetched = true
		fctx := s.ctx
		cancel := func() {}
		if br != nil && p.brCfg.SourceTimeout > 0 && fctx != nil {
			fctx, cancel = context.WithTimeout(fctx, p.brCfg.SourceTimeout)
		}
		v, err := src.fetch(fctx, sc)
		cancel()
		if br != nil {
			if err != nil && s.ctx != nil && s.ctx.Err() != nil {
				// The request itself was cancelled; that says nothing
				// about the source's health.
				br.cancelProbe()
			} else {
				br.record(err == nil, err)
			}
		}
		if err != nil {
			return iql.Value{}, 0, err
		}
		p.noteGood(ck, v)
		return v, v.Footprint(), nil
	}
	v, shared, err := p.srcExt.GetOrCompute(ck, []string{key}, compute)
	if err != nil && shared && isCancellation(err) && (s.ctx == nil || s.ctx.Err() == nil) {
		v, _, err = p.srcExt.GetOrCompute(ck, []string{key}, compute)
	}
	// Cache hits (including waits coalesced onto another request's
	// in-flight fetch) record a zero-cost hit span so traces show where
	// an extent came from; misses were recorded inside fetch itself.
	if !fetched && s.ctx != nil {
		if sp, _ := obs.StartSpan(s.ctx, obs.StageFetch, src.name); sp != nil {
			sp.SetDetail(sc.Key())
			sp.SetCache(obs.CacheHit)
			if err == nil && v.Kind == iql.KindBag {
				sp.SetRows(int64(len(v.Items)))
			}
			sp.End(err)
		}
	}
	if err != nil && br != nil && (s.ctx == nil || s.ctx.Err() == nil) {
		return p.staleExtent(s, src, sc, ck, "fetch failed: "+compactErr(err))
	}
	return v, err
}

// staleExtent serves the last-known-good extent of a source object (or
// the wrapper's own snapshot fallback) when the source is unreachable,
// stamping the evaluation with a degraded warning. With no fallback
// available — or fallback disabled — the source's unavailability
// surfaces as an error.
func (p *Processor) staleExtent(s *session, src source, sc hdm.Scheme, ck, cause string) (iql.Value, error) {
	if !p.brCfg.DisableFallback {
		p.lgMu.Lock()
		lg, ok := p.lastGood[ck]
		p.lgMu.Unlock()
		age := time.Duration(-1)
		if ok {
			age = time.Since(lg.at)
		} else if src.fb != nil {
			// No retained copy (e.g. the daemon restarted while the
			// source was down): fall back to the wrapper's snapshot
			// extent, whose age is unknown.
			if v, found := src.fb.FallbackExtent(sc.Parts()); found {
				lg, ok = lastGoodEntry{val: v}, true
			}
		}
		if ok {
			if br := p.breakerFor(src.name); br != nil {
				br.noteFallback()
			}
			warn := degradedWarning(src.name, sc, age, cause)
			p.warnIn(s, warn)
			if sp, _ := obs.StartSpan(s.ctx, obs.StageFallback, src.name); sp != nil {
				sp.SetDetail(sc.Key())
				sp.SetCache(obs.CacheHit)
				if lg.val.Kind == iql.KindBag {
					sp.SetRows(int64(len(lg.val.Items)))
				}
				sp.End(nil)
			}
			return lg.val, nil
		}
	}
	return iql.Value{}, fmt.Errorf("query: source %s unavailable for <<%s>> (%s; no fallback extent)",
		src.name, strings.Join(sc.Parts(), ", "), cause)
}

// isCancellation reports whether err stems from context cancellation,
// however the transport wrapped it.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (p *Processor) virtualExtent(s *session, key string, parts []string, derivs []Derivation) (iql.Value, error) {
	if s.onStack[key] {
		s.cut = true
		return iql.Bag(), nil
	}
	s.onStack[key] = true
	savedCut := s.cut
	s.cut = false
	warnMark := len(s.warnLog)
	depMark := len(s.depLog)
	// The object's own key heads its dependency set: invalidating it
	// (e.g. a new derivation registered for it) must evict this memo
	// entry and everything computed on top of it.
	s.dep(key)
	var acc []iql.Value
	var evalErr error
	for _, d := range derivs {
		s.scopes = append(s.scopes, d.Scope)
		ev := s.evaluator()
		v, err := ev.Eval(d.Query, nil)
		s.scopes = s.scopes[:len(s.scopes)-1]
		if err != nil {
			evalErr = fmt.Errorf("query: unfolding <<%s>> via %s: %w",
				strings.Join(parts, ", "), d.Via, err)
			break
		}
		els, err := v.Elements()
		if err != nil {
			evalErr = fmt.Errorf("query: derivation of <<%s>> via %s is not a collection: %w",
				strings.Join(parts, ", "), d.Via, err)
			break
		}
		acc = append(acc, els...)
		if d.Lower {
			if iql.IsVoidAnyRange(d.Query) {
				p.warnIn(s, fmt.Sprintf("extent of <<%s>> is unknown via %s (Range Void Any)",
					strings.Join(parts, ", "), d.Via))
			} else {
				p.warnIn(s, fmt.Sprintf("extent of <<%s>> may be incomplete: lower bound used (via %s)",
					strings.Join(parts, ", "), d.Via))
			}
		}
	}
	delete(s.onStack, key)
	if evalErr != nil {
		return iql.Value{}, evalErr
	}
	out := iql.BagOf(acc)
	if !s.cut {
		ce := cachedExtent{val: out, deps: cache.Dedup(s.depLog[depMark:])}
		if n := len(s.warnLog) - warnMark; n > 0 {
			ce.warns = append([]string(nil), s.warnLog[warnMark:]...)
		}
		p.memo.Put(key, ce, ce.cost(), ce.deps)
	}
	s.cut = s.cut || savedCut
	return out, nil
}

// Eval evaluates a parsed IQL expression against the processor,
// prefetching the source extents the expression enumerates
// concurrently before the serial evaluation walks them.
func (p *Processor) Eval(e iql.Expr) (iql.Value, error) {
	p.prefetch(nil, e, "")
	s := p.newSession(nil)
	v, err := s.evaluator().Eval(e, nil)
	p.noteEval(s.stats, nil)
	return v, err
}

// EvalContext evaluates a parsed IQL expression under a context (for
// per-request timeouts and cancellation) and returns, alongside the
// value, the incompleteness warnings raised by this evaluation alone
// and the distinct scheme keys it touched (its dependency set, for
// selective result-cache invalidation), both sorted. Unlike the
// ClearWarnings/Eval/Warnings sequence, it is safe under concurrent
// queries: each evaluation collects its own warnings.
func (p *Processor) EvalContext(ctx context.Context, e iql.Expr) (iql.Value, []string, []string, error) {
	p.prefetch(ctx, e, "")
	sp, ctx := obs.StartSpan(ctx, obs.StageEval, "")
	s := p.newSession(ctx)
	s.warnings = make(map[string]bool)
	v, err := s.evaluator().Eval(e, nil)
	p.noteEval(s.stats, sp)
	sp.End(err)
	if err != nil {
		return iql.Value{}, nil, nil, err
	}
	warns := make([]string, 0, len(s.warnings))
	for w := range s.warnings {
		warns = append(warns, w)
	}
	sort.Strings(warns)
	return v, warns, s.deps(), nil
}

// EvalScoped evaluates an expression whose unqualified references
// resolve against the named source schema first.
func (p *Processor) EvalScoped(e iql.Expr, scope string) (iql.Value, error) {
	p.prefetch(nil, e, scope)
	s := p.newSession(nil, scope)
	v, err := s.evaluator().Eval(e, nil)
	p.noteEval(s.stats, nil)
	return v, err
}

// Query parses and evaluates IQL source text.
func (p *Processor) Query(src string) (iql.Value, error) {
	e, err := iql.Parse(src)
	if err != nil {
		return iql.Value{}, err
	}
	return p.Eval(e)
}

// Materialize computes the extent of every object in a schema,
// returning a map from scheme key to extent. Used to snapshot an
// integrated resource (e.g. to answer source queries in the reverse
// direction) and by the benchmark harness.
func (p *Processor) Materialize(s *hdm.Schema) (map[string]iql.Value, error) {
	out := make(map[string]iql.Value, s.Len())
	for _, o := range s.Objects() {
		v, err := p.Extent(o.Scheme.Parts())
		if err != nil {
			return nil, fmt.Errorf("query: materialising %s: %w", o.Scheme, err)
		}
		out[o.Scheme.Key()] = v
	}
	return out, nil
}

// Unfold returns the fully unfolded form of a query: every virtual
// scheme reference is syntactically replaced by the bag union of its
// derivations until only source-resident references remain. This is the
// classical GAV query-unfolding view of what Eval computes; it is
// exposed for inspection and testing. Scoping information is lost in
// the textual form, so Unfold is only exact when object names are
// globally unambiguous. Ident-induced cycles make the rewriting
// non-terminating in general, so unfolding stops after maxDepth rounds
// and reports an error if virtual references remain.
func (p *Processor) Unfold(e iql.Expr, maxDepth int) (iql.Expr, error) {
	cur := e
	for depth := 0; depth < maxDepth; depth++ {
		replaced := false
		cur = iql.SubstituteSchemes(cur, func(parts []string) (iql.Expr, bool) {
			key := strings.Join(parts, "|")
			p.mu.Lock()
			derivs, ok := p.defs[key]
			p.mu.Unlock()
			if !ok {
				return nil, false
			}
			replaced = true
			var out iql.Expr
			for _, d := range derivs {
				q := d.Query
				if lo, _, isRange := iql.IsRange(q); isRange {
					q = lo
				}
				if out == nil {
					out = q
				} else {
					out = &iql.Binary{Op: "++", L: out, R: q}
				}
			}
			if out == nil {
				out = &iql.BagExpr{}
			}
			return out, true
		})
		if !replaced {
			return cur, nil
		}
	}
	for _, parts := range iql.UniqueSchemeRefs(cur) {
		key := strings.Join(parts, "|")
		p.mu.Lock()
		_, stillVirtual := p.defs[key]
		p.mu.Unlock()
		if stillVirtual {
			return nil, fmt.Errorf("query: unfolding did not terminate within %d rounds (cyclic idents?)", maxDepth)
		}
	}
	return cur, nil
}
