package query

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

func TestExplainDerivationTree(t *testing.T) {
	p := New()
	p.AddSource(staticSource(t, "S", map[string]iql.Value{
		"<<t, c>>": iql.Bag(iql.Tuple(iql.Int(1), iql.Str("x"))),
	}))
	p.Define(hdm.MustScheme("<<I, c>>"),
		iql.MustParse("[{'S', k, v} | {k, v} <- <<t, c>>]"), "S->I", "S")
	p.Define(hdm.MustScheme("<<G>>"),
		iql.MustParse("[v | {s, k, v} <- <<I, c>>]"), "I->G", "")

	out := p.Explain(hdm.MustScheme("<<G>>"))
	for _, want := range []string{
		"<<G>>: 1 derivation(s)",
		"via I->G",
		"<<I, c>>: 1 derivation(s)",
		"scope S",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Source objects explain as leaves.
	leaf := p.Explain(hdm.MustScheme("<<t, c>>"))
	if !strings.Contains(leaf, "source object") {
		t.Errorf("leaf explain:\n%s", leaf)
	}
	// Unknown objects are flagged.
	unk := p.Explain(hdm.MustScheme("<<zzz>>"))
	if !strings.Contains(unk, "UNKNOWN") {
		t.Errorf("unknown explain:\n%s", unk)
	}
}

func TestExplainCycleSafe(t *testing.T) {
	p := New()
	p.Define(hdm.MustScheme("<<a>>"), iql.MustParse("<<b>>"), "x", "")
	p.Define(hdm.MustScheme("<<b>>"), iql.MustParse("<<a>>"), "x", "")
	out := p.Explain(hdm.MustScheme("<<a>>"))
	if !strings.Contains(out, "(see above)") {
		t.Errorf("cycle not cut:\n%s", out)
	}
}
