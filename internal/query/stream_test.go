package query

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
	"github.com/dataspace/automed/internal/wrapper"
)

// newStreamSQLSource registers a sqlmem-backed SQL wrapper serving an
// "items" table of rows (id i, v i%10) with the given fetch page size.
func newStreamSQLSource(t *testing.T, dsn string, rows, pageRows int) *wrapper.SQL {
	t.Helper()
	db := rel.NewDB("S")
	tb := db.MustCreateTable("items", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "v", Type: rel.Int},
	}, "id")
	for i := 0; i < rows; i++ {
		tb.MustInsert(int64(i), int64(i%10))
	}
	sqlmem.Register(dsn, db)
	w, err := wrapper.NewSQL("S", wrapper.SQLConfig{
		Driver:        sqlmem.DriverName,
		DSN:           dsn,
		FetchPageRows: pageRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStreamedQueryMatchesMaterialised is the byte-identity guard for
// the streaming pipeline: the same single-generator query over an
// extent far above the spill threshold must return exactly the same
// value streamed as materialised, and streaming must not leave the
// whole extent resident in the source-extent cache.
func TestStreamedQueryMatchesMaterialised(t *testing.T) {
	const rows = 10000
	// A non-equality filter: "v = 3" would be planned as an indexed
	// const-key lookup, which (like any join) materialises its source.
	q := iql.MustParse(`[x | {x, v} <- <<items, v>>; v < 1]`)

	run := func(dsn string, scanBuffer int) (*Processor, iql.Value) {
		w := newStreamSQLSource(t, dsn, rows, 256)
		p := New()
		p.ScanBuffer = scanBuffer
		if err := p.AddSource(w); err != nil {
			t.Fatal(err)
		}
		v, _, _, err := p.EvalContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return p, v
	}

	streamed, vs := run("stream-eq-s", 128)
	materialised, vm := run("stream-eq-m", -1)
	if vs.String() != vm.String() {
		t.Fatalf("streamed result diverges from materialised:\n  streamed:     %s\n  materialised: %s", vs, vm)
	}
	if vs.Len() != rows/10 {
		t.Fatalf("result has %d elements, want %d", vs.Len(), rows/10)
	}

	const ck = "S\x00items|v"
	if streamed.srcExt.Peek(ck) {
		t.Error("streamed evaluation cached the full extent; streaming should bypass the source-extent cache")
	}
	if !materialised.srcExt.Peek(ck) {
		t.Error("materialised evaluation did not cache the extent")
	}
}

// TestStreamSpillThresholdMaterialisesSmallExtents: an extent at or
// below the scan buffer is read once through the scanner, materialised
// and cached, so repeated queries serve it from the cache exactly as
// the non-streaming pipeline would.
func TestStreamSpillThresholdMaterialisesSmallExtents(t *testing.T) {
	w := newStreamSQLSource(t, "stream-small", 32, 16)
	p := New()
	p.ScanBuffer = 128 // 32 rows < 128: below the spill threshold
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := p.EvalContext(context.Background(), iql.MustParse(`count([x | {x, v} <- <<items, v>>])`))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != iql.KindInt || v.I != 32 {
		t.Fatalf("count = %s, want 32", v)
	}
	if !p.srcExt.Peek("S\x00items|v") {
		t.Error("small extent was not materialised into the source-extent cache")
	}
}

// TestStreamDeadlineCutsMidStream: a request deadline expiring while a
// streamed scan is in flight must surface as a deadline error through
// the generator, not hang or return a truncated result.
func TestStreamDeadlineCutsMidStream(t *testing.T) {
	const dsn = "stream-deadline"
	w := newStreamSQLSource(t, dsn, 5000, 64)
	sqlmem.SetDelay(dsn, 20*time.Millisecond) // per page round trip
	p := New()
	p.ScanBuffer = 64
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Millisecond)
	defer cancel()
	_, _, _, err := p.EvalContext(ctx, iql.MustParse(`count([x | {x, v} <- <<items, v>>])`))
	if err == nil {
		t.Fatal("query over a 5000-row source with 20ms/page delay beat a 90ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
}

// TestStreamDisabledNeverScans: ScanBuffer < 0 must route every extent
// through the materialised path even when the wrapper could stream.
func TestStreamDisabledNeverScans(t *testing.T) {
	w := newStreamSQLSource(t, "stream-off", 2000, 128)
	p := New()
	p.ScanBuffer = -1
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}
	v, err := p.Query(`count([x | {x, v} <- <<items, v>>])`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != iql.KindInt || v.I != 2000 {
		t.Fatalf("count = %s, want 2000", v)
	}
	if !p.srcExt.Peek("S\x00items|v") {
		t.Error("with streaming disabled the extent should be fetched and cached whole")
	}
}

// TestStreamParallelShardingEquivalence: a streamed serial scan and a
// sharded data-parallel scan over the materialised extent must produce
// identical results — streaming must not perturb the parallel
// pipeline's byte-identity guarantee.
func TestStreamParallelShardingEquivalence(t *testing.T) {
	const rows = 8000
	build := func(dsn string, parallel, scanBuffer int) iql.Value {
		w := newStreamSQLSource(t, dsn, rows, 512)
		p := New()
		p.Parallel = parallel
		p.ScanBuffer = scanBuffer
		if err := p.AddSource(w); err != nil {
			t.Fatal(err)
		}
		v, err := p.Query(fmt.Sprintf(`[x | {x, v} <- <<items, v>>; v < %d]`, 7))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	streamed := build("stream-par-1", 1, 512)
	sharded := build("stream-par-8", 8, -1)
	if streamed.String() != sharded.String() {
		t.Fatal("streamed serial evaluation diverges from sharded materialised evaluation")
	}
}

// TestStreamRenameChase covers the federation shape: a virtual object
// defined as a bare scheme-reference rename of a streaming source
// object must stream exactly like the source object itself (same
// result, no full extent in the source-extent cache), while a virtual
// object with a computed body must keep materialising.
func TestStreamRenameChase(t *testing.T) {
	const rows = 10000
	w := newStreamSQLSource(t, "stream-rename", rows, 256)
	p := New()
	p.ScanBuffer = 128
	if err := p.AddSource(w); err != nil {
		t.Fatal(err)
	}
	// big_items renames the source object, as /federate's include
	// transforms do; computed derives it through a comprehension.
	p.Define(hdm.MustScheme("<<big_items, v>>"), iql.MustParse("<<items, v>>"), "rename", "S")
	p.Define(hdm.MustScheme("<<computed, v>>"), iql.MustParse("[r | r <- <<items, v>>]"), "comp", "S")

	v, _, _, err := p.EvalContext(context.Background(), iql.MustParse(`[x | {x, v} <- <<big_items, v>>; v < 1]`))
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != rows/10 {
		t.Fatalf("renamed stream returned %d elements, want %d", v.Len(), rows/10)
	}
	const ck = "S\x00items|v"
	if p.srcExt.Peek(ck) {
		t.Error("rename chase cached the full extent; the chased stream should bypass the source-extent cache")
	}

	// The computed virtual cannot be chased: its unfolding materialises
	// into the memo as before (the body's own evaluation may still
	// stream its generator internally, which is why srcExt is not
	// asserted here).
	v, _, _, err = p.EvalContext(context.Background(), iql.MustParse(`[x | {x, v} <- <<computed, v>>; v < 1]`))
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != rows/10 {
		t.Fatalf("computed virtual returned %d elements, want %d", v.Len(), rows/10)
	}
	if !p.memo.Peek("computed|v") {
		t.Error("computed virtual was not memoised; its unfolding should materialise as before")
	}
}
