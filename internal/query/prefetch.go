package query

import (
	"context"
	"strings"
	"sync"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/obs"
)

// Concurrent extent prefetch. A multi-generator comprehension over the
// integrated schema unfolds onto several data source extents; fetching
// them one by one during evaluation serialises the wrappers' latencies.
// Before evaluating a query, the processor statically collects the
// scheme references the comprehension will enumerate — generator
// sources, aggregate/member arguments, union operands — expands those
// that name virtual objects one definition level at a time (skipping
// anything already memoised), and warms the source-extent cache for the
// distinct source objects concurrently. The fetches go through the
// cache's singleflight GetOrCompute, so a prefetch in flight coalesces
// with the evaluation that needs it (and with concurrent queries)
// instead of duplicating wrapper work.
//
// Prefetch is advisory: errors are swallowed (the serial evaluation
// path re-fetches and surfaces them with full context), the walk is
// bounded, and cancellation of the request context stops scheduling.

const (
	// DefaultPrefetchWorkers bounds concurrent wrapper fetches per
	// query when Processor.PrefetchWorkers is unset.
	DefaultPrefetchWorkers = 8
	// DefaultPrefetchMaxTasks bounds how many distinct source extents
	// one query's prefetch may schedule when Processor.PrefetchMaxTasks
	// is unset.
	DefaultPrefetchMaxTasks = 64
	// prefetchMaxDepth bounds the virtual-definition expansion depth.
	prefetchMaxDepth = 4
	// specDivisor caps speculative warming (if-branch arms, which may
	// never be evaluated) to this fraction of the task budget, so cold
	// branches cannot crowd out extents the query will certainly scan.
	specDivisor = 4
)

// prefetchWorkerCount resolves the effective prefetch pool width.
func (p *Processor) prefetchWorkerCount() int {
	if p.PrefetchWorkers > 0 {
		return p.PrefetchWorkers
	}
	return DefaultPrefetchWorkers
}

// prefetchTaskCap resolves the effective per-query task budget.
func (p *Processor) prefetchTaskCap() int {
	if p.PrefetchMaxTasks > 0 {
		return p.PrefetchMaxTasks
	}
	return DefaultPrefetchMaxTasks
}

// prefetchTask names one source object to warm.
type prefetchTask struct {
	src source
	sc  hdm.Scheme
}

// prefetch warms the source-extent cache for the distinct, not yet
// cached source extents the expression will enumerate, fetching them
// concurrently. It blocks until the scheduled fetches finish (so the
// following serial evaluation hits the cache) and is a no-op when
// fewer than two extents need fetching. Speculative tasks — extents
// referenced only inside if-branch arms, which evaluation may never
// reach — are scheduled on the same pool but never awaited: a cold
// branch warms in the background without stalling the query.
func (p *Processor) prefetch(ctx context.Context, e iql.Expr, scope string) {
	if ctx != nil && ctx.Err() != nil {
		return
	}
	pf := prefetcher{p: p, taskCap: p.prefetchTaskCap()}
	pf.visitExpr(e, scope, 0)
	tasks, spec := pf.tasks, pf.spec
	if len(tasks)+len(spec) < 2 {
		return // a single fetch gains nothing from concurrency
	}
	// The prefetch span parents the workers' fetch spans, so traces show
	// the parallel warm-up as one stage with overlapping children.
	sp, sctx := obs.StartSpan(ctx, obs.StagePrefetch, "")
	defer sp.End(nil)
	workers := p.prefetchWorkerCount()
	if len(tasks)+len(spec) < workers {
		workers = len(tasks) + len(spec)
	}
	sem := make(chan struct{}, workers)
	fetch := func(fctx context.Context, t prefetchTask) {
		key := t.sc.Key()
		ck := t.src.name + "\x00" + key
		// Errors are not cached and not reported here: the serial
		// evaluation re-fetches and wraps them with query context.
		// The request context rides into context-aware (remote)
		// wrappers so a cancelled request abandons in-flight fetches.
		_, _, _ = p.srcExt.GetOrCompute(ck, []string{key}, func() (iql.Value, int64, error) {
			v, err := t.src.fetch(fctx, t.sc)
			if err != nil {
				return iql.Value{}, 0, err
			}
			return v, v.Footprint(), nil
		})
	}
	// Speculative branch-arm warms are detached: nothing waits for
	// them, and they contend for pool slots with the certain tasks so
	// the pool width stays the bound. They carry the caller's context
	// (not the prefetch span's) because they may outlive the stage.
	pctx := ctx
	for _, t := range spec {
		go func(t prefetchTask) {
			if pctx == nil {
				sem <- struct{}{}
			} else {
				select {
				case sem <- struct{}{}:
				case <-pctx.Done():
					return
				}
			}
			defer func() { <-sem }()
			fetch(pctx, t)
		}(t)
	}
	ctx = sctx
	var wg sync.WaitGroup
scheduling:
	for _, t := range tasks {
		if ctx == nil {
			sem <- struct{}{}
		} else {
			// Cancellable slot acquisition: a timed-out request must not
			// park behind slow in-flight fetches.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				break scheduling
			}
		}
		wg.Add(1)
		go func(t prefetchTask) {
			defer wg.Done()
			defer func() { <-sem }()
			fetch(ctx, t)
		}(t)
	}
	if ctx == nil {
		wg.Wait()
		return
	}
	// Wait for the scheduled fetches (so the serial evaluation hits the
	// cache), but give up as soon as the request is cancelled: detached
	// workers only touch the cache, whose singleflight makes their
	// completion safe to abandon.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// prefetcher collects the distinct, not yet cached source extents an
// expression will enumerate. References are resolved the same way
// evaluation resolves them (scope first, then virtual definitions, then
// unambiguous global resolution); virtual references that are not
// memoised are expanded into their derivations' references, scoped per
// derivation, with cycles cut by a visited set. Bookkeeping maps are
// allocated lazily so a fully warm walk costs no allocations beyond
// the walk itself.
type prefetcher struct {
	p           *Processor
	taskCap     int
	tasks       []prefetchTask
	seenTask    map[string]bool
	seenVirtual map[string]bool
	// inBranch marks the walk as inside an if-branch arm; references
	// found there land in spec (speculative, never awaited, capped at
	// taskCap/specDivisor) instead of tasks.
	inBranch bool
	spec     []prefetchTask
	// streamPos marks the next reference visited as a comprehension's
	// first generator source — the position the evaluator streams when
	// the source supports it (see stream.go). Warming such an extent
	// would pin it whole in the cache and defeat streaming's bounded
	// memory, so addSource skips it. The flag is consumed (cleared) by
	// whichever visit sees it first.
	streamPos bool
}

func (pf *prefetcher) addSource(src source, sc hdm.Scheme, streamPos bool) {
	if streamPos && src.streams && src.scan != nil && pf.p.effectiveScanBuffer() > 0 {
		// Evaluation will stream this scan (or materialise it itself if
		// it turns out small); warming it here would force the whole
		// extent resident.
		return
	}
	ck := src.name + "\x00" + sc.Key()
	if pf.seenTask[ck] || pf.p.srcExt.Peek(ck) {
		return
	}
	if pf.seenTask == nil {
		pf.seenTask = make(map[string]bool, 8)
	}
	pf.seenTask[ck] = true
	if pf.inBranch {
		pf.spec = append(pf.spec, prefetchTask{src: src, sc: sc})
		return
	}
	pf.tasks = append(pf.tasks, prefetchTask{src: src, sc: sc})
}

func (pf *prefetcher) visitRef(parts []string, scope string, depth int) {
	// Consume the stream-position mark: it applies to source
	// resolutions of this reference only, not to the derivation bodies
	// a virtual reference expands into (each body's own comprehension
	// re-marks its first generator below).
	streamPos := pf.streamPos
	pf.streamPos = false
	if depth > prefetchMaxDepth {
		return
	}
	if pf.inBranch {
		if len(pf.spec) >= pf.taskCap/specDivisor {
			return
		}
	} else if len(pf.tasks) >= pf.taskCap {
		return
	}
	p := pf.p
	// 1. The current scope's source schema wins for unqualified
	// references (mirrors extentIn).
	if scope != "" {
		if src, sc, ok := p.resolveIn(scope, parts); ok {
			pf.addSource(src, sc, streamPos)
			return
		}
	}
	// 2. Virtual objects: expand their derivations unless the extent is
	// already memoised.
	key := strings.Join(parts, "|")
	p.mu.Lock()
	derivs, virtual := p.defs[key]
	p.mu.Unlock()
	if virtual {
		if pf.seenVirtual[key] || p.memo.Peek(key) {
			return
		}
		if pf.seenVirtual == nil {
			pf.seenVirtual = make(map[string]bool, 8)
		}
		pf.seenVirtual[key] = true
		// A sole full-extent bare-rename derivation keeps the stream
		// position: extentStream chases exactly this shape to the
		// underlying source, so warming that source here would put its
		// extent in the cache and defeat the stream.
		if streamPos && len(derivs) == 1 && !derivs[0].Lower {
			if _, bare := derivs[0].Query.(*iql.SchemeRef); bare {
				pf.streamPos = true
			}
		}
		for _, d := range derivs {
			pf.visitExpr(d.Query, d.Scope, depth+1)
		}
		return
	}
	// 3. Unambiguous global source resolution (ambiguous references
	// will fail evaluation; there is nothing useful to warm for them).
	if hits := p.resolveGlobal(parts); len(hits) == 1 {
		pf.addSource(hits[0].src, hits[0].sc, streamPos)
	}
}

// visitEnumerated dispatches an expression in enumerated position: a
// scheme reference is visited directly, anything else is walked.
func (pf *prefetcher) visitEnumerated(e iql.Expr, scope string, depth int) {
	if ref, ok := e.(*iql.SchemeRef); ok {
		pf.visitRef(ref.Parts, scope, depth)
		return
	}
	pf.streamPos = false // only a direct scheme reference can stream
	pf.visitExpr(e, scope, depth)
}

// visitExpr walks the scheme references the expression will enumerate
// when evaluated: generator sources of comprehensions (at any nesting
// depth), references passed to builtins, and the operands of bag
// union. References in other positions (e.g. a branch of an if) may
// never be evaluated, so they are not prefetched.
func (pf *prefetcher) visitExpr(e iql.Expr, scope string, depth int) {
	switch n := e.(type) {
	case nil:
		return
	case *iql.SchemeRef:
		// A bare reference at the top of a query (or of a derivation
		// body) is enumerated directly.
		pf.visitRef(n.Parts, scope, depth)
	case *iql.Comp:
		// The evaluator streams only a comprehension's first generator,
		// and only when the plan has no joins. Joins need a second
		// generator, so a sole generator is the statically-certain
		// stream position; multi-generator comprehensions are warmed as
		// before (their equi-joins materialise every source anyway, and
		// skipping the warm would serialise overlappable fetches).
		gens := 0
		for _, q := range n.Quals {
			if _, ok := q.(*iql.Generator); ok {
				gens++
			}
		}
		first := true
		for _, q := range n.Quals {
			switch qq := q.(type) {
			case *iql.Generator:
				if first && gens == 1 {
					pf.streamPos = true
				}
				first = false
				pf.visitEnumerated(qq.Src, scope, depth)
				pf.streamPos = false
			case *iql.Filter:
				pf.visitExpr(qq.Cond, scope, depth)
			}
		}
		pf.visitExpr(n.Head, scope, depth)
	case *iql.Call:
		for _, a := range n.Args {
			pf.visitEnumerated(a, scope, depth)
		}
	case *iql.Binary:
		if n.Op == "++" {
			pf.visitEnumerated(n.L, scope, depth)
			pf.visitEnumerated(n.R, scope, depth)
			return
		}
		pf.visitExpr(n.L, scope, depth)
		pf.visitExpr(n.R, scope, depth)
	case *iql.Unary:
		pf.visitExpr(n.X, scope, depth)
	case *iql.TupleExpr:
		for _, x := range n.Elems {
			pf.visitExpr(x, scope, depth)
		}
	case *iql.BagExpr:
		for _, x := range n.Elems {
			pf.visitExpr(x, scope, depth)
		}
	case *iql.RangeExpr:
		// Evaluating a Range yields its lower bound.
		pf.visitEnumerated(n.Lo, scope, depth)
	case *iql.LetExpr:
		pf.visitEnumerated(n.Val, scope, depth)
		pf.visitExpr(n.Body, scope, depth)
	case *iql.IfExpr:
		pf.visitExpr(n.Cond, scope, depth)
		// Branch arms may never be evaluated: warm them speculatively
		// (capped, never awaited) so a cold branch costs nothing when
		// untaken yet is already in flight when taken.
		saved := pf.inBranch
		pf.inBranch = true
		pf.visitEnumerated(n.Then, scope, depth)
		pf.visitEnumerated(n.Else, scope, depth)
		pf.inBranch = saved
	}
}
