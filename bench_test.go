package automed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"github.com/dataspace/automed/internal/classical"
	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/ispider"
	"github.com/dataspace/automed/internal/match"
	"github.com/dataspace/automed/internal/server"
	"github.com/dataspace/automed/internal/transform"
)

// Benchmark harness for the paper's evaluation artefacts (see
// EXPERIMENTS.md): E1 = Table 1 queries, E2 = effort comparison,
// E3 = pay-as-you-go curve, F1-F4 = the construction figures, plus
// ablation micro-benchmarks for the substrates.

var (
	benchOnce sync.Once
	benchIG   *core.Integrator
	benchErr  error
)

// benchIntegrator builds the case-study integration once, reused by the
// query benchmarks (warm-path evaluation, as a deployed dataspace would
// run).
func benchIntegrator(b *testing.B) *core.Integrator {
	b.Helper()
	benchOnce.Do(func() {
		benchIG, benchErr = ispider.RunIntersection(ispider.BenchConfig(), false)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchIG
}

// BenchmarkTable1 runs each of the seven priority queries over the
// integrated global schema (E1). Sub-benchmarks are named by query id.
func BenchmarkTable1(b *testing.B) {
	ig := benchIntegrator(b)
	for _, q := range ispider.Table1Queries() {
		b.Run(q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ig.Query(q.IQL)
				if err != nil {
					b.Fatal(err)
				}
				if res.Value.Kind == iql.KindBag && res.Value.Len() == 0 {
					b.Fatalf("%s returned no results", q.ID)
				}
			}
		})
	}
}

// BenchmarkTable1Parallel pairs the join-heavy Table 1 queries (Q4-Q7)
// run with sharded evaluation forced serial against the same queries
// with a worker pool as wide as GOMAXPROCS. Run with -cpu 1,8 (or
// GOMAXPROCS set) to see the scaling; on one core the sharded path
// degrades to the serial loop by design, so the pair stays near parity.
func BenchmarkTable1Parallel(b *testing.B) {
	ig := benchIntegrator(b)
	proc := ig.Processor()
	defer func(old int) { proc.Parallel = old }(proc.Parallel)
	for _, id := range []string{"Q4", "Q5", "Q6", "Q7"} {
		q, ok := ispider.QueryByID(id)
		if !ok {
			b.Fatalf("no query %s", id)
		}
		for _, mode := range []struct {
			name  string
			width int
		}{
			{"serial", 1},
			{"sharded", runtime.GOMAXPROCS(0)},
		} {
			b.Run(id+"/"+mode.name, func(b *testing.B) {
				proc.Parallel = mode.width
				for i := 0; i < b.N; i++ {
					if _, err := ig.Query(q.IQL); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable1Q1Cold re-answers Q1 with cold extent caches every
// iteration: the full GAV unfolding cost.
func BenchmarkTable1Q1Cold(b *testing.B) {
	ig := benchIntegrator(b)
	q, _ := ispider.QueryByID("Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ig.Processor().InvalidateCache()
		if _, err := ig.Query(q.IQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEffortIntersection builds the entire intersection-based
// integration from scratch (E2, intersection side: 26 manual steps and
// all tool-generated machinery).
func BenchmarkEffortIntersection(b *testing.B) {
	cfg := ispider.DefaultConfig()
	for i := 0; i < b.N; i++ {
		ig, err := ispider.RunIntersection(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if ig.Report().TotalManual() != 26 {
			b.Fatalf("manual = %d", ig.Report().TotalManual())
		}
	}
}

// BenchmarkEffortClassical builds the entire classical integration
// (E2, baseline side: 95 counted non-trivial steps).
func BenchmarkEffortClassical(b *testing.B) {
	cfg := ispider.DefaultConfig()
	for i := 0; i < b.N; i++ {
		cb, err := ispider.RunClassical(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if cb.TotalNonTrivial() != 95 {
			b.Fatalf("non-trivial = %d", cb.TotalNonTrivial())
		}
	}
}

// BenchmarkPayAsYouGoCurve replays the plan step by step, probing query
// answerability after every iteration (E3).
func BenchmarkPayAsYouGoCurve(b *testing.B) {
	cfg := ispider.DefaultConfig()
	for i := 0; i < b.N; i++ {
		pedro, gpmdb, pepseeker, err := ispider.Wrappers(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ig, err := core.New(pedro, gpmdb, pepseeker)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ig.Federate("F"); err != nil {
			b.Fatal(err)
		}
		answerable := 0
		for _, step := range ispider.IntersectionPlan() {
			switch step.Kind {
			case "intersect":
				if _, err := ig.Intersect(step.Name, step.Mappings); err != nil {
					b.Fatal(err)
				}
			case "refine":
				if err := ig.Refine(step.Name, step.Refinement); err != nil {
					b.Fatal(err)
				}
			}
			for _, q := range ispider.Table1Queries() {
				if _, err := ig.Query(q.IQL); err == nil {
					answerable++
				}
			}
		}
		if answerable == 0 {
			b.Fatal("no queries became answerable")
		}
	}
}

// toySources builds the three bookstore-style sources used by the
// figure benchmarks.
func toySources(b *testing.B) []Wrapper {
	b.Helper()
	lib, err := NewSource("Library").
		Table("books", "id:int", "isbn", "title", "shelf").
		Insert("books", int64(1), "978-1", "Dataspaces", "A1").
		Insert("books", int64(2), "978-2", "Schema Matching", "A2").
		Wrap()
	if err != nil {
		b.Fatal(err)
	}
	shop, err := NewSource("Shop").
		Table("items", "sku", "barcode", "name", "price:float").
		Insert("items", "S1", "978-2", "Schema Matching", 30.0).
		Wrap()
	if err != nil {
		b.Fatal(err)
	}
	archive, err := NewSource("Archive").
		Table("scans", "scan_id:int", "format").
		Insert("scans", int64(9), "pdf").
		Wrap()
	if err != nil {
		b.Fatal(err)
	}
	return []Wrapper{lib, shop, archive}
}

var toyMappings = []Mapping{
	Entity("<<UBook>>",
		From("Library", "[{'LIB', k} | k <- <<books>>]"),
		From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
	),
	Attribute("<<UBook, isbn>>",
		From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
		From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
	),
}

// BenchmarkFigure1UnionCompatible constructs the Fig. 1 topology:
// union-compatible schemas ident-merged into a global schema.
func BenchmarkFigure1UnionCompatible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := toySources(b)
		cb, err := classical.New(ws...)
		if err != nil {
			b.Fatal(err)
		}
		err = cb.AddStage(classical.Stage{Name: "GS1", Concepts: []classical.Concept{
			{Object: "<<books>>", Identity: "Library",
				Mapped: []classical.MappedFrom{{Source: "Shop", Query: "[k | k <- <<items>>]", Counted: true}}},
			{Object: "<<books, isbn>>", Identity: "Library",
				Mapped: []classical.MappedFrom{{Source: "Shop", Query: "[{k, x} | {k, x} <- <<items, barcode>>]", Counted: true}}},
		}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cb.Merge("GS"); err != nil {
			b.Fatal(err)
		}
		if _, err := cb.Query("count(<<books>>)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2IntersectionSchema constructs a pairwise intersection
// schema in the canonical normal form (Fig. 2).
func BenchmarkFigure2IntersectionSchema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := toySources(b)
		ig, err := core.New(ws...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ig.Federate("F"); err != nil {
			b.Fatal(err)
		}
		in, err := ig.Intersect("I1", toyMappings)
		if err != nil {
			b.Fatal(err)
		}
		for _, pw := range in.PathwayBySource {
			if err := pw.IsIntersectionForm(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure3Federation builds the federated schema of all
// sources (Fig. 3).
func BenchmarkFigure3Federation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ig, err := core.New(toySources(b)...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ig.Federate("F"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4GlobalSchema builds the global schema with redundancy
// dropping, G = I ∪ (ES1−I) ∪ (ES2−I) ∪ ES3 (Fig. 4).
func BenchmarkFigure4GlobalSchema(b *testing.B) {
	ws := toySources(b)
	ig, err := core.New(ws...)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		b.Fatal(err)
	}
	if _, err := ig.Intersect("I1", toyMappings); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ig.BuildGlobal(true); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate ablations ----

// BenchmarkIQLParse measures the IQL front end on a Table-1-sized
// query.
func BenchmarkIQLParse(b *testing.B) {
	q, _ := ispider.QueryByID("Q5")
	for i := 0; i < b.N; i++ {
		if _, err := iql.Parse(q.IQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIQLEval measures raw comprehension evaluation over in-memory
// extents (a 3-generator join).
func BenchmarkIQLEval(b *testing.B) {
	n := 200
	pairs := make([]iql.Value, n)
	for i := range pairs {
		pairs[i] = iql.Tuple(iql.Int(int64(i)), iql.Int(int64(i%17)))
	}
	ext := iql.ExtentsFunc(func(parts []string) (iql.Value, error) {
		return iql.BagOf(pairs), nil
	})
	e := iql.MustParse("count([{a, c} | {a, x} <- <<t, u>>; {c, y} <- <<t, u>>; x = y])")
	ev := iql.NewEvaluator(ext)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(e, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathwayReversal measures automatic BAV reversal of a
// case-study-sized pathway.
func BenchmarkPathwayReversal(b *testing.B) {
	ig := benchIntegrator(b)
	var pw *transform.Pathway
	for _, in := range ig.Intersections() {
		for _, p := range in.PathwayBySource {
			if pw == nil || p.Len() > pw.Len() {
				pw = p
			}
		}
	}
	if pw == nil {
		b.Fatal("no pathway")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := pw.Reverse()
		if rev.Len() != pw.Len() {
			b.Fatal("bad reversal")
		}
	}
}

// BenchmarkMatcher measures matcher throughput between the two largest
// case-study schemas.
func BenchmarkMatcher(b *testing.B) {
	_, gpmdb, pepseeker, err := ispider.Wrappers(ispider.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := match.New(match.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.Match(gpmdb.Schema(), pepseeker.Schema(), nil, nil)
		if len(out) == 0 {
			b.Fatal("no correspondences")
		}
	}
}

// BenchmarkFederationScaling measures Federate against source schema
// width.
func BenchmarkFederationScaling(b *testing.B) {
	for _, tables := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("tables=%d", tables), func(b *testing.B) {
			sb := NewSource("Wide")
			for t := 0; t < tables; t++ {
				sb.Table(fmt.Sprintf("t%03d", t), "id:int", "a", "b", "c")
			}
			w, err := sb.Wrap()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ig, err := core.New(w)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ig.Federate("F"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchServerSetup builds a dataspace server over the toy bookstore
// integration and returns an httptest front end for it.
func benchServerSetup(b *testing.B) *httptest.Server {
	b.Helper()
	srv := server.New(server.DefaultConfig())
	sess, err := srv.Sessions().Get("default", true)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range toySources(b) {
		if err := sess.AddSource(w); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := sess.Federate(context.Background(), "F", false); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Intersect("I1", toyMappings); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(func() { srv.PurgePlans() })
	benchSrv = srv
	return ts
}

var benchSrv *server.Server

// benchServerQuery posts one query and asserts HTTP 200.
func benchServerQuery(b *testing.B, ts *httptest.Server, body map[string]any) {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		b.Fatalf("query status %d: %s", resp.StatusCode, msg)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServerQuery measures one HTTP query through the dataspace
// server in its three cache regimes: cold (plan cache purged every
// iteration, result cache bypassed), plan-cached (parse skipped, full
// GAV evaluation), and result-cached (answer served from the result
// cache). The spread between the three is the serving layer's caching
// headroom; later perf PRs should widen it.
func BenchmarkServerQuery(b *testing.B) {
	const q = "count([{k, x} | {k, x} <- <<UBook, isbn>>])"
	ts := benchServerSetup(b)

	b.Run("cold", func(b *testing.B) {
		body := map[string]any{"query": q, "no_cache": true}
		for i := 0; i < b.N; i++ {
			benchSrv.PurgePlans()
			benchServerQuery(b, ts, body)
		}
	})
	b.Run("plan-cached", func(b *testing.B) {
		body := map[string]any{"query": q, "no_cache": true}
		benchServerQuery(b, ts, body) // warm the plan cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchServerQuery(b, ts, body)
		}
	})
	b.Run("result-cached", func(b *testing.B) {
		body := map[string]any{"query": q}
		benchServerQuery(b, ts, body) // warm both caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchServerQuery(b, ts, body)
		}
	})
}

// benchServerPost posts JSON to a path and decodes the JSON response.
func benchServerPost(b *testing.B, ts *httptest.Server, path string, body map[string]any) map[string]any {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		b.Fatalf("%s status %d: %v", path, resp.StatusCode, out)
	}
	return out
}

// BenchmarkIterationWarmCache measures the payoff of dependency-tracked
// invalidation: after an integration iteration that touches an
// unrelated scheme (<<UScan>> from Archive), a warm repeated query over
// <<UBook, isbn>> is still answered from cache — pinned queries straight
// from the result cache, current-version queries from warm extent memos
// — instead of being re-unfolded from the sources as the old
// purge-everything path forced.
func BenchmarkIterationWarmCache(b *testing.B) {
	const q = "count([{k, x} | {k, x} <- <<UBook, isbn>>])"
	ts := benchServerSetup(b) // federate (v0) + intersect I1 (v1)

	// Warm the result cache at the published version 1.
	pinned := map[string]any{"query": q, "version": 1}
	benchServerPost(b, ts, "/query", pinned)

	// One unrelated iteration: integrate Archive's scans. Its touch-set
	// ({UScan, UScan|format}) is disjoint from every warm UBook answer.
	benchServerPost(b, ts, "/refine", map[string]any{
		"name": "scans",
		"mapping": map[string]any{
			"target": "<<UScan, format>>",
			"forward": []map[string]any{
				{"source": "Archive", "query": "[{'ARC', k, x} | {k, x} <- <<scans, format>>]"},
			},
		},
	})

	b.Run("pinned-result-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := benchServerPost(b, ts, "/query", pinned)
			if !out["result_cached"].(bool) {
				b.Fatal("warm pinned query was not served from the result cache after an unrelated iteration")
			}
		}
	})

	b.Run("current-extents-warm", func(b *testing.B) {
		sess, err := benchSrv.Sessions().Get("default", false)
		if err != nil {
			b.Fatal(err)
		}
		cur := map[string]any{"query": q}
		benchServerPost(b, ts, "/query", cur) // warm at the new version
		memo0, src0 := sess.ExtentCacheStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchServerPost(b, ts, "/query", map[string]any{"query": q, "no_cache": true})
		}
		b.StopTimer()
		memo1, src1 := sess.ExtentCacheStats()
		if memo1.Misses != memo0.Misses || src1.Misses != src0.Misses {
			b.Fatalf("re-unfolding happened after an unrelated iteration: memo misses %d->%d, source misses %d->%d",
				memo0.Misses, memo1.Misses, src0.Misses, src1.Misses)
		}
	})
}

// BenchmarkSchemeParse measures scheme parsing/printing round trips.
func BenchmarkSchemeParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := hdm.ParseScheme("<<UProteinHit, dbsearch>>")
		if err != nil {
			b.Fatal(err)
		}
		if sc.String() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkReverseProcessor measures building the LAV-direction
// processor (materialise global + reverse pathways).
func BenchmarkReverseProcessor(b *testing.B) {
	ig := benchIntegrator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ig.ReverseProcessor(); err != nil {
			b.Fatal(err)
		}
	}
}
