// Pay-as-you-go: replays the case study iteration by iteration,
// probing after each step which of the seven priority queries has
// become answerable — the incremental-service property that motivates
// dataspaces (paper §1, §3).
package main

import (
	"fmt"
	"log"

	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/ispider"
)

func main() {
	cfg := ispider.DefaultConfig()
	pedro, gpmdb, pepseeker, err := ispider.Wrappers(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ig, err := core.New(pedro, gpmdb, pepseeker)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		log.Fatal(err)
	}

	probe := func(stage string, cumulative int) {
		fmt.Printf("\nafter %-3s (cumulative manual effort: %2d):\n", stage, cumulative)
		for _, q := range ispider.Table1Queries() {
			res, err := ig.Query(q.IQL)
			switch {
			case err != nil:
				fmt.Printf("  %s: not yet answerable\n", q.ID)
			default:
				fmt.Printf("  %s: %d result(s)\n", q.ID, res.Value.Len())
			}
		}
	}

	probe("F", 0)
	for _, step := range ispider.IntersectionPlan() {
		switch step.Kind {
		case "intersect":
			if _, err := ig.Intersect(step.Name, step.Mappings, step.Enables...); err != nil {
				log.Fatalf("step %s: %v", step.Name, err)
			}
		case "refine":
			if err := ig.Refine(step.Name, step.Refinement, step.Enables...); err != nil {
				log.Fatalf("step %s: %v", step.Name, err)
			}
		}
		probe(step.Name, ig.Report().Totals().Manual())
	}

	fmt.Println("\nevery query went live as soon as its concepts were mapped —")
	fmt.Println("the classical baseline would have answered nothing until all 95 steps.")
}
