// Matching: semi-automatic integration. The schema matcher suggests
// correspondences between two sources (paper workflow step 4); the
// top suggestions are turned into an intersection mappings table and
// executed.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/dataspace/automed"
)

func main() {
	hr, err := automed.NewSource("HR").
		Table("employee", "emp_id:int", "full_name", "email", "department").
		Insert("employee", int64(1), "Ada Lovelace", "ada@example.org", "Engineering").
		Insert("employee", int64(2), "Alan Turing", "alan@example.org", "Research").
		Insert("employee", int64(3), "Grace Hopper", "grace@example.org", "Engineering").
		Wrap()
	if err != nil {
		log.Fatal(err)
	}
	crm, err := automed.NewSource("CRM").
		Table("person", "pid:int", "name", "mail", "company").
		Insert("person", int64(10), "Ada Lovelace", "ada@example.org", "Acme").
		Insert("person", int64(11), "Edsger Dijkstra", "edsger@example.org", "Initech").
		Wrap()
	if err != nil {
		log.Fatal(err)
	}

	sys, err := automed.New(hr, crm)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Federate("F"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("matcher suggestions (name + instance evidence):")
	suggestions := sys.Suggest("HR", "CRM", 0.30)
	for _, c := range suggestions {
		fmt.Printf("  %s\n", c)
	}

	// Turn attribute suggestions into a mappings table under a shared
	// UPerson concept. A real tool would let the integrator edit these;
	// here we accept every suggestion between columns.
	mappings := []automed.Mapping{
		automed.Entity("<<UPerson>>",
			automed.From("HR", "[{'HR', k} | k <- <<employee>>]"),
			automed.From("CRM", "[{'CRM', k} | k <- <<person>>]"),
		),
	}
	for _, c := range suggestions {
		if c.Left.Arity() != 2 || c.Right.Arity() != 2 {
			continue
		}
		target := "<<UPerson, " + c.Left.Last() + ">>"
		mappings = append(mappings, automed.Attribute(target,
			automed.From("HR", fmt.Sprintf("[{'HR', k, x} | {k, x} <- %s]", c.Left)),
			automed.From("CRM", fmt.Sprintf("[{'CRM', k, x} | {k, x} <- %s]", c.Right)),
		))
	}
	fmt.Printf("\naccepting %d suggested attribute mapping(s)\n", len(mappings)-1)
	if _, err := sys.Intersect("I1", mappings); err != nil {
		log.Fatal(err)
	}

	// The shared person appears under both provenances.
	res, err := sys.Query("[{s, k} | {s, k, m} <- <<UPerson, email>>; contains(m, 'ada')]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nada across both sources:", res.Value)

	fmt.Println()
	fmt.Print(sys.Report())
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("matcher-seeded integration complete")
}
