// Remote sources: federate a SQL database (served through an
// in-process database/sql driver) with a JSON/REST endpoint (served
// over real HTTP) and integrate them with one intersection schema —
// the multi-backend shape of the paper's workflow. Swap the sqlmem
// driver for a real one (and the local listener for a deployed API)
// and nothing else changes.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"github.com/dataspace/automed"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
)

// startSQLBackend registers a library catalogue behind the sqlmem
// stub driver; with a real database only Driver/DSN change.
func startSQLBackend() {
	db := rel.NewDB("Library")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "isbn", Type: rel.String},
		{Name: "title", Type: rel.String},
	}, "id")
	books.MustInsert(int64(1), "978-1", "Dataspaces")
	books.MustInsert(int64(2), "978-2", "Schema Matching")
	books.MustInsert(int64(3), "978-3", "Query Rewriting")
	sqlmem.Register("library", db)
}

// startRESTBackend serves a shop inventory as JSON over a loopback
// listener and returns its base URL.
func startRESTBackend() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	const items = `[
		{"id": "S1", "barcode": "978-2", "name": "Schema Matching", "price": 30.0},
		{"id": "S2", "barcode": "978-4", "name": "Data Integration", "price": 40.0}
	]`
	mux := http.NewServeMux()
	// The root document advertises the collections; the wrapper
	// discovers the schema from it, then fetches /items per extent.
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"items": %s}`, items)
	})
	mux.HandleFunc("GET /items", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, items)
	})
	go http.Serve(ln, mux)
	return "http://" + ln.Addr().String(), nil
}

func main() {
	startSQLBackend()
	endpoint, err := startRESTBackend()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Wrap both remote backends; schemas are introspected live.
	library, err := automed.OpenSQL("Library", automed.SQLConfig{
		Driver: sqlmem.DriverName,
		DSN:    "library",
	})
	if err != nil {
		log.Fatal(err)
	}
	shop, err := automed.OpenREST("Shop", automed.RESTConfig{Endpoint: endpoint})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := automed.New(library, shop)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Federate: immediately queryable, extents fetched over the
	// wire (concurrently, when a query spans both backends).
	if _, err := sys.Federate("F"); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query("[t | {k, t} <- <<library_books, title>>]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL titles (federated):", res.Value)

	// 3. One intersection iteration across the two backends.
	if _, err := sys.Intersect("I1", []automed.Mapping{
		automed.Entity("<<UBook>>",
			automed.From("Library", "[{'LIB', k} | k <- <<books>>]"),
			automed.From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		automed.Attribute("<<UBook, isbn>>",
			automed.From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			automed.From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
	}); err != nil {
		log.Fatal(err)
	}

	res, err = sys.Query("count(<<UBook>>)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrated UBook count (SQL + REST):", res.Value)

	res, err = sys.Query("distinct([x | {s, k, x} <- <<UBook, isbn>>])")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("isbns across both backends:", res.Value)
}
