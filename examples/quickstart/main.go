// Quickstart: integrate two small bookstore sources with one
// intersection schema and query the result — the paper's workflow in
// ~60 lines.
package main

import (
	"fmt"
	"log"

	"github.com/dataspace/automed"
)

func main() {
	// 1. Wrap the data sources (step 1 of the paper's workflow).
	library, err := automed.NewSource("Library").
		Table("books", "id:int", "isbn", "title", "shelf").
		Insert("books", int64(1), "978-1", "Dataspaces", "A1").
		Insert("books", int64(2), "978-2", "Schema Matching", "A2").
		Insert("books", int64(3), "978-3", "Query Rewriting", "B1").
		Wrap()
	if err != nil {
		log.Fatal(err)
	}
	shop, err := automed.NewSource("Shop").
		Table("items", "sku", "barcode", "name", "price:float").
		Insert("items", "S1", "978-2", "Schema Matching", 30.0).
		Insert("items", "S2", "978-4", "Data Integration", 40.0).
		Wrap()
	if err != nil {
		log.Fatal(err)
	}

	sys, err := automed.New(library, shop)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Federate: a queryable global schema with zero mapping effort.
	if _, err := sys.Federate("F"); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query("[t | {k, t} <- <<library_books, title>>]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("library titles (federated, pre-integration):", res.Value)

	// 3. Assert the semantic overlap as an intersection schema.
	if _, err := sys.Intersect("I1", []automed.Mapping{
		automed.Entity("<<UBook>>",
			automed.From("Library", "[{'LIB', k} | k <- <<books>>]"),
			automed.From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		automed.Attribute("<<UBook, isbn>>",
			automed.From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			automed.From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
		automed.Attribute("<<UBook, title>>",
			automed.From("Library", "[{'LIB', k, x} | {k, x} <- <<books, title>>]"),
			automed.From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, name>>]"),
		),
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Query the integrated concept: bag-union across both sources.
	res, err = sys.Query("count(<<UBook>>)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrated books:", res.Value)

	res, err = sys.Query("[{s, k} | {s, k, x} <- <<UBook, isbn>>; x = '978-2']")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who has ISBN 978-2:", res.Value)

	// Un-integrated data stays reachable through the federation.
	res, err = sys.Query("[{k, p} | {k, p} <- <<shop_items, price>>]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shop prices (never integrated):", res.Value)

	// 5. Effort report: what was manual, what the tool generated.
	fmt.Println()
	fmt.Print(sys.Report())
}
