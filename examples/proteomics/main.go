// Proteomics: the paper's full case study — integrating Pedro, gpmDB
// and PepSeeker query-first with intersection schemas, then comparing
// effort with the classical up-front integration.
package main

import (
	"fmt"
	"log"

	"github.com/dataspace/automed/internal/ispider"
)

func main() {
	cfg := ispider.DefaultConfig()

	fmt.Println("== intersection-schema integration (query-driven) ==")
	ig, err := ispider.RunIntersection(cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ig.Report())

	fmt.Println("\n== Table 1: the seven priority queries ==")
	for _, q := range ispider.Table1Queries() {
		res, err := ig.Query(q.IQL)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		fmt.Printf("%s (%s): %d result(s)\n", q.ID, q.Description, res.Value.Len())
	}

	fmt.Println("\n== classical baseline (up-front) ==")
	cb, err := ispider.RunClassical(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range cb.EffortBreakdown() {
		fmt.Println(" ", line)
	}
	fmt.Printf("\nmanual effort: intersection=%d vs classical=%d (paper: 26 vs 95)\n",
		ig.Report().TotalManual(), cb.TotalNonTrivial())
}
