module github.com/dataspace/automed

go 1.24
