package automed

import (
	"fmt"
	"strings"

	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/wrapper"
)

// SourceBuilder assembles an in-memory relational data source for use
// with New. Column specifications are "name:type" strings with type one
// of string, int, float, bool (defaulting to string); the first column
// is the primary key unless one carries a "!pk" suffix.
//
//	b := automed.NewSource("Library")
//	b.Table("books", "id:int", "isbn", "title")
//	b.Insert("books", int64(1), "978-1", "Dataspaces")
//	src, err := b.Wrap()
type SourceBuilder struct {
	db  *rel.DB
	err error
}

// NewSource starts building a source with the given schema name.
func NewSource(name string) *SourceBuilder {
	return &SourceBuilder{db: rel.NewDB(name)}
}

// Table declares a table from column specifications. Errors are
// deferred to Wrap.
func (b *SourceBuilder) Table(name string, colSpecs ...string) *SourceBuilder {
	if b.err != nil {
		return b
	}
	cols := make([]rel.Column, len(colSpecs))
	pk := ""
	for i, spec := range colSpecs {
		isPK := strings.HasSuffix(spec, "!pk")
		spec = strings.TrimSuffix(spec, "!pk")
		cname, ctype := spec, "string"
		if j := strings.LastIndex(spec, ":"); j >= 0 {
			cname, ctype = spec[:j], spec[j+1:]
		}
		ty, err := rel.ParseType(ctype)
		if err != nil {
			b.err = fmt.Errorf("automed: table %q: %w", name, err)
			return b
		}
		cols[i] = rel.Column{Name: cname, Type: ty}
		if isPK {
			pk = cname
		}
	}
	if _, err := b.db.CreateTable(name, cols, pk); err != nil {
		b.err = fmt.Errorf("automed: %w", err)
	}
	return b
}

// Insert appends a row in column order. Integer cells must be int64 and
// floating-point cells float64. Errors are deferred to Wrap.
func (b *SourceBuilder) Insert(table string, vals ...any) *SourceBuilder {
	if b.err != nil {
		return b
	}
	t, ok := b.db.Table(table)
	if !ok {
		b.err = fmt.Errorf("automed: no table %q", table)
		return b
	}
	if err := t.Insert(vals...); err != nil {
		b.err = fmt.Errorf("automed: %w", err)
	}
	return b
}

// ForeignKey declares and validates a foreign key. Errors are deferred
// to Wrap.
func (b *SourceBuilder) ForeignKey(table, column, refTable string) *SourceBuilder {
	if b.err != nil {
		return b
	}
	if err := b.db.AddForeignKey(table, column, refTable); err != nil {
		b.err = fmt.Errorf("automed: %w", err)
	}
	return b
}

// Wrap finalises the source, returning the first deferred error if any.
func (b *SourceBuilder) Wrap() (Wrapper, error) {
	if b.err != nil {
		return nil, b.err
	}
	return wrapper.NewRelational(b.db.Name(), b.db)
}

// ExportCSV writes the built source as a directory of typed-header CSV
// files loadable with OpenCSVDir.
func (b *SourceBuilder) ExportCSV(dir string) error {
	if b.err != nil {
		return b.err
	}
	return rel.WriteCSVDir(b.db, dir)
}
