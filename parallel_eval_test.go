package automed

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/ispider"
)

// buildCaseStudy builds the full intersection-based case study with the
// benchmark-sized synthetic sources and pins the processor's sharded-
// evaluation width.
func buildCaseStudy(t *testing.T, parallel int) *core.Integrator {
	t.Helper()
	ig, err := ispider.RunIntersection(ispider.BenchConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	ig.Processor().Parallel = parallel
	return ig
}

// mustQuery answers one Table 1 query or fails the test.
func mustQuery(t *testing.T, ig *core.Integrator, q ispider.CaseQuery) core.Result {
	t.Helper()
	res, err := ig.Query(q.IQL)
	if err != nil {
		t.Fatalf("%s: %v", q.ID, err)
	}
	return res
}

// checkSameAnswer asserts the serial and sharded answers to one query
// are byte-identical: value text, warning set, dependency closure, and
// the schema version they were answered against.
func checkSameAnswer(t *testing.T, phase string, q ispider.CaseQuery, ser, par core.Result) {
	t.Helper()
	if got, want := par.Value.String(), ser.Value.String(); got != want {
		t.Errorf("%s %s: parallel value differs from serial\n  serial:   %s\n  parallel: %s", phase, q.ID, want, got)
	}
	if !reflect.DeepEqual(ser.Warnings, par.Warnings) {
		t.Errorf("%s %s: warnings differ: serial %v, parallel %v", phase, q.ID, ser.Warnings, par.Warnings)
	}
	if !reflect.DeepEqual(ser.Deps, par.Deps) {
		t.Errorf("%s %s: deps differ: serial %v, parallel %v", phase, q.ID, ser.Deps, par.Deps)
	}
	if ser.Version != par.Version || ser.Schema != par.Schema {
		t.Errorf("%s %s: answered against %s v%d vs %s v%d", phase, q.ID,
			ser.Schema, ser.Version, par.Schema, par.Version)
	}
}

// TestParallelMatchesSerialTable1 is the end-to-end equivalence
// property for data-parallel sharded evaluation: every Table 1 query,
// answered over the fully integrated case study, must be byte-identical
// between a serial processor (Parallel = 1) and a sharded one
// (Parallel = 8) — across cold caches, warm memoised extents, targeted
// dependency invalidation, and a wholesale cache purge. It also pins
// down that the sharded path actually engaged (the property would be
// vacuous if every scan fell back to serial) and that no worker
// goroutines outlive their evaluation.
func TestParallelMatchesSerialTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full case-study integration twice")
	}
	baseGoroutines := runtime.NumGoroutine()
	serial := buildCaseStudy(t, 1)
	sharded := buildCaseStudy(t, 8)
	queries := ispider.Table1Queries()

	// Cold caches: the first answer pays the full GAV unfolding, so the
	// sharded run exercises worker extent resolution through the locked
	// session as well as sharded generator scans.
	cold := make(map[string]core.Result, len(queries))
	for _, q := range queries {
		ser := mustQuery(t, serial, q)
		par := mustQuery(t, sharded, q)
		checkSameAnswer(t, "cold", q, ser, par)
		cold[q.ID] = ser
	}

	// Warm: memoised virtual extents serve both processors.
	for _, q := range queries {
		checkSameAnswer(t, "warm", q, mustQuery(t, serial, q), mustQuery(t, sharded, q))
	}

	// Targeted invalidation: evicting exactly each answer's dependency
	// closure forces re-derivation along the same paths on both sides.
	for _, q := range queries {
		serial.Processor().InvalidateSchemes(cold[q.ID].Deps...)
		sharded.Processor().InvalidateSchemes(cold[q.ID].Deps...)
		ser := mustQuery(t, serial, q)
		par := mustQuery(t, sharded, q)
		checkSameAnswer(t, "invalidated", q, ser, par)
		checkSameAnswer(t, "invalidated-vs-cold", q, cold[q.ID], par)
	}

	// Wholesale purge: everything re-derives from the source extents.
	serial.Processor().InvalidateCache()
	sharded.Processor().InvalidateCache()
	for _, q := range queries {
		checkSameAnswer(t, "purged", q, mustQuery(t, serial, q), mustQuery(t, sharded, q))
	}

	ps := sharded.Processor().ParallelStats()
	if ps.ParallelEvals == 0 || ps.Shards == 0 {
		t.Errorf("sharded processor never sharded a scan: %+v", ps)
	}
	if ss := serial.Processor().ParallelStats(); ss.ParallelEvals != 0 {
		t.Errorf("serial processor reports sharded evals: %+v", ss)
	}

	// Every sharded worker must have unwound with its evaluation.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after", baseGoroutines, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelSpeedupSmoke is the make bench-parallel gate: with at
// least two cores, sharded evaluation of the join-heavy Table 1
// queries must beat the serial path outright. On a single core the
// gate skips — sharding degrades to the serial loop there by design,
// so there is no speedup to demand.
func TestParallelSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate over the full case study")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("%d CPU: sharded evaluation has no parallelism to exploit", runtime.NumCPU())
	}
	ig := buildCaseStudy(t, 1)
	proc := ig.Processor()
	var heavy []ispider.CaseQuery
	for _, q := range ispider.Table1Queries() {
		switch q.ID {
		case "Q4", "Q5", "Q6", "Q7":
			heavy = append(heavy, q)
		}
	}

	// One warm-up pass populates the extent memos, so both timed paths
	// measure pure comprehension evaluation over identical caches.
	for _, q := range heavy {
		mustQuery(t, ig, q)
	}
	suite := func() time.Duration {
		start := time.Now()
		for _, q := range heavy {
			mustQuery(t, ig, q)
		}
		return time.Since(start)
	}
	bestOf := func(n int) time.Duration {
		best := suite()
		for i := 1; i < n; i++ {
			if d := suite(); d < best {
				best = d
			}
		}
		return best
	}

	proc.Parallel = 1
	serial := bestOf(5)
	proc.Parallel = runtime.GOMAXPROCS(0)
	sharded := bestOf(5)
	t.Logf("Q4-Q7 suite: serial %v, sharded %v (%.2fx, %d workers)",
		serial, sharded, float64(serial)/float64(sharded), proc.Parallel)
	if sharded >= serial {
		t.Errorf("sharded evaluation (%v) is not faster than serial (%v) on %d cores",
			sharded, serial, runtime.NumCPU())
	}
}
