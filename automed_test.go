package automed

import (
	"bytes"
	"strings"
	"testing"
)

func buildSources(t *testing.T) (Wrapper, Wrapper) {
	t.Helper()
	lib, err := NewSource("Library").
		Table("books", "id:int", "isbn", "title", "shelf").
		Insert("books", int64(1), "978-1", "Dataspaces", "A1").
		Insert("books", int64(2), "978-2", "Schema Matching", "A2").
		Wrap()
	if err != nil {
		t.Fatal(err)
	}
	shop, err := NewSource("Shop").
		Table("items", "sku", "barcode", "name", "price:float").
		Insert("items", "S1", "978-2", "Schema Matching", 30.0).
		Insert("items", "S2", "978-4", "Data Integration", 40.0).
		Wrap()
	if err != nil {
		t.Fatal(err)
	}
	return lib, shop
}

func integratedSystem(t *testing.T) *System {
	t.Helper()
	lib, shop := buildSources(t)
	sys, err := New(lib, shop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Intersect("I1", []Mapping{
		Entity("<<UBook>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		Attribute("<<UBook, isbn>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
	}, "Q1"); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeWorkflow(t *testing.T) {
	sys := integratedSystem(t)
	res, err := sys.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.String() != "4" {
		t.Errorf("count(UBook) = %s", res.Value)
	}
	// Extent access.
	v, err := sys.Extent("<<UBook, isbn>>")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Errorf("extent = %s", v)
	}
	// Report and intersections.
	if sys.Report().TotalManual() != 4 {
		t.Errorf("manual = %d", sys.Report().TotalManual())
	}
	if len(sys.Intersections()) != 1 {
		t.Error("intersection not recorded")
	}
	if sys.Global() == nil || sys.Federated() == nil {
		t.Error("schemas missing")
	}
}

func TestFacadeSourceBuilderErrors(t *testing.T) {
	// Deferred error surfaces at Wrap.
	_, err := NewSource("X").Table("t", "id:bogus").Wrap()
	if err == nil {
		t.Error("bad column type accepted")
	}
	_, err = NewSource("X").Table("t", "id:int").Insert("missing", int64(1)).Wrap()
	if err == nil {
		t.Error("insert into missing table accepted")
	}
	_, err = NewSource("X").Table("t", "id:int").Insert("t", "wrong").Wrap()
	if err == nil {
		t.Error("wrongly typed insert accepted")
	}
	// Explicit pk marker and fk validation.
	_, err = NewSource("X").
		Table("a", "name", "id:int!pk").
		Insert("a", "n", int64(1)).
		Table("b", "id:int", "aid:int").
		Insert("b", int64(1), int64(1)).
		ForeignKey("b", "aid", "a").
		Wrap()
	if err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
}

func TestFacadeCSVExportAndOpen(t *testing.T) {
	dir := t.TempDir()
	b := NewSource("Lib").
		Table("books", "id:int", "isbn").
		Insert("books", int64(1), "978-1")
	if err := b.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	w, err := OpenCSVDir("Lib", dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Federate("F"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("count(<<lib_books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.String() != "1" {
		t.Errorf("count = %s", res.Value)
	}
}

func TestFacadeXMLSource(t *testing.T) {
	xml := `<catalog><entry code="978-2"><label>Schema Matching</label></entry></catalog>`
	w, err := OpenXML("Catalog", strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := buildSources(t)
	sys, err := New(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Federate("F"); err != nil {
		t.Fatal(err)
	}
	// Cross-model intersection: relational books ∩ XML entries, joined
	// on ISBN/code through the common data model.
	if _, err := sys.Intersect("I1", []Mapping{
		Entity("<<UBook>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Catalog", "[{'XML', k} | k <- <<entry>>]"),
		),
		Attribute("<<UBook, isbn>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			From("Catalog", "[{'XML', k, x} | {k, x} <- <<entry, @code>>]"),
		),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("[{s, k} | {s, k, x} <- <<UBook, isbn>>; x = '978-2']")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Len() != 2 {
		t.Errorf("cross-model join = %s", res.Value)
	}
}

func TestFacadeSuggest(t *testing.T) {
	lib, shop := buildSources(t)
	sys, err := New(lib, shop)
	if err != nil {
		t.Fatal(err)
	}
	out := sys.Suggest("Library", "Shop", 0.1)
	if len(out) == 0 {
		t.Error("no suggestions")
	}
	if out := sys.Suggest("Library", "Missing", 0.1); out != nil {
		t.Error("suggestions for unknown source")
	}
}

func TestFacadeSaveRepo(t *testing.T) {
	sys := integratedSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveRepo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UBook") {
		t.Error("saved repository missing intersection objects")
	}
}

func TestFacadeReverseProcessor(t *testing.T) {
	sys := integratedSystem(t)
	if _, err := sys.BuildGlobal(true); err != nil {
		t.Fatal(err)
	}
	rp, err := sys.ReverseProcessor()
	if err != nil {
		t.Fatal(err)
	}
	v, err := rp.Query("count(<<books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "2" {
		t.Errorf("reverse count = %s", v)
	}
}

func TestFacadeIQLHelpers(t *testing.T) {
	if _, err := ParseIQL("[k | k <- <<t>>]"); err != nil {
		t.Error(err)
	}
	if _, err := ParseIQL("[bad"); err == nil {
		t.Error("bad IQL accepted")
	}
	s, err := FormatIQL("[ k|k <- <<t>> ]")
	if err != nil || s != "[k | k <- <<t>>]" {
		t.Errorf("FormatIQL = %q %v", s, err)
	}
	sc, err := ParseScheme("<<a, b>>")
	if err != nil || sc.Arity() != 2 {
		t.Errorf("ParseScheme = %v %v", sc, err)
	}
}
